#include "global/checker.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <unordered_map>

#include "core/fmt.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace ringstab {
namespace {

constexpr std::uint32_t kUnvisited = 0xffffffffu;

// Iterative Tarjan over the implicit global transition graph restricted to
// states outside I: the unfused baseline engine. One full run serves both
// livelock queries — it collects every state on a ¬I cycle and extracts a
// witness cycle from the first nontrivial SCC it pops (deterministic: pop
// order is a pure function of the graph). Serial; the precomputed invariant
// mask is supplied by the checker.
class OutsideInvariantScc {
 public:
  OutsideInvariantScc(const RingInstance& ring, const PackedBitset& in_inv)
      : ring_(ring), in_inv_(in_inv) {
    index_.assign(ring.num_states(), kUnvisited);
    low_.assign(ring.num_states(), 0);
    on_stack_.assign(ring.num_states(), false);
  }

  void run() {
    for (GlobalStateId root = 0; root < ring_.num_states(); ++root) {
      if (index_[root] != kUnvisited) continue;
      if (in_inv_.test(root)) continue;
      visit(root);
    }
    obs::counter("checker.tarjan_states_visited").add(next_index_);
  }

  std::optional<std::vector<GlobalStateId>> witness_cycle;
  std::vector<GlobalStateId> cycle_states;

 private:
  struct Frame {
    GlobalStateId v;
    std::vector<GlobalStateId> children;
    std::size_t next_child = 0;
  };

  void expand(GlobalStateId v, std::vector<GlobalStateId>& out) {
    out.clear();
    static thread_local std::vector<RingInstance::Step> succ;
    ring_.successors(v, succ);
    for (const auto& s : succ)
      if (!in_inv_.test(s.target)) out.push_back(s.target);
  }

  void visit(GlobalStateId root) {
    std::vector<Frame> call;
    call.push_back({root, {}, 0});
    expand(root, call.back().children);
    index_[root] = low_[root] = next_index_++;
    stack_.push_back(root);
    on_stack_[root] = true;

    while (!call.empty()) {
      Frame& f = call.back();
      const GlobalStateId v = f.v;
      bool descended = false;
      while (f.next_child < f.children.size()) {
        const GlobalStateId w = f.children[f.next_child++];
        if (index_[w] == kUnvisited) {
          call.push_back({w, {}, 0});
          expand(w, call.back().children);
          index_[w] = low_[w] = next_index_++;
          stack_.push_back(w);
          on_stack_[w] = true;
          descended = true;
          break;
        }
        if (on_stack_[w]) low_[v] = std::min(low_[v], index_[w]);
      }
      if (descended) continue;

      if (low_[v] == index_[v]) {
        // Pop the component.
        std::vector<GlobalStateId> comp;
        while (true) {
          const GlobalStateId w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = false;
          comp.push_back(w);
          if (w == v) break;
        }
        if (comp.size() > 1) {  // global self-loops cannot exist
          if (!witness_cycle) witness_cycle = extract_cycle(comp);
          cycle_states.insert(cycle_states.end(), comp.begin(), comp.end());
        }
      }
      call.pop_back();
      if (!call.empty())
        low_[call.back().v] = std::min(low_[call.back().v], low_[v]);
    }
  }

  // A simple cycle inside one nontrivial SCC: DFS from comp[0] back to it,
  // restricted to component members.
  std::vector<GlobalStateId> extract_cycle(
      const std::vector<GlobalStateId>& comp) {
    std::vector<GlobalStateId> sorted = comp;
    std::sort(sorted.begin(), sorted.end());
    auto in_comp = [&](GlobalStateId s) {
      return std::binary_search(sorted.begin(), sorted.end(), s);
    };
    const GlobalStateId start = comp[0];

    // Iterative DFS with parent links back to `start`.
    std::unordered_map<GlobalStateId, GlobalStateId> parent;
    std::vector<GlobalStateId> stack{start};
    std::vector<GlobalStateId> kids;
    parent.emplace(start, start);
    while (!stack.empty()) {
      const GlobalStateId v = stack.back();
      stack.pop_back();
      expand(v, kids);
      for (GlobalStateId w : kids) {
        if (!in_comp(w)) continue;
        if (w == start) {
          // Reconstruct v -> ... -> start.
          std::vector<GlobalStateId> cyc{start};
          for (GlobalStateId x = v; x != start; x = parent.at(x))
            cyc.push_back(x);
          std::reverse(cyc.begin() + 1, cyc.end());
          return cyc;
        }
        if (!parent.emplace(w, v).second) continue;
        stack.push_back(w);
      }
    }
    RINGSTAB_ASSERT(false, "nontrivial SCC without a cycle");
    return {};
  }

  const RingInstance& ring_;
  const PackedBitset& in_inv_;
  std::uint32_t next_index_ = 0;
  std::vector<std::uint32_t> index_, low_;
  std::vector<bool> on_stack_;
  std::vector<GlobalStateId> stack_;
};

/// All 8 words of the 64-byte tile starting at word `w` fully set?
inline bool tile_full(const PackedBitset& bs, std::uint64_t w) {
  std::uint64_t acc = ~std::uint64_t{0};
  for (std::uint64_t i = 0; i < 8; ++i) acc &= bs.word(w + i);
  return acc == ~std::uint64_t{0};
}

}  // namespace

// ---------------------------------------------------------------------------
// Fused pipeline: two decode passes, then everything runs on the cached CSR.
// ---------------------------------------------------------------------------

std::uint32_t GlobalChecker::rank_of(GlobalStateId s) const {
  const std::uint64_t w = s >> 6;
  const std::uint64_t below = (std::uint64_t{1} << (s & 63)) - 1;
  return static_cast<std::uint32_t>(
      word_rank_[w] +
      static_cast<std::uint64_t>(std::popcount(~inv_mask_.word(w) & below)));
}

void GlobalChecker::ensure_masks() const {
  if (census_done_) return;
  const GlobalStateId n = ring_->num_states();
  const obs::Span span("checker.fused_census");
  obs::Counter& swept = obs::counter("checker.states_swept");
  PackedBitset mask(n);
  const std::uint64_t chunks = num_chunks(n, 0);
  std::vector<std::size_t> counts(chunks, 0);
  std::vector<std::vector<GlobalStateId>> found(chunks);
  // Chunks start on multiples of a 64-aligned grain, so each chunk's mask
  // bits live in chunk-private words: plain set() is race-free.
  parallel_for(n, num_threads_, 0, [&](const ChunkRange& chunk, std::size_t) {
    auto cur = ring_->cursor(chunk.begin);
    std::size_t count = 0;
    for (GlobalStateId s = chunk.begin; s < chunk.end; ++s, cur.advance()) {
      const std::uint8_t cls = cur.classify();
      if (cls & RingInstance::kClassInvariant) {
        mask.set(s);
      } else if (cls & RingInstance::kClassDeadlock) {
        ++count;
        if (found[chunk.index].size() < kMaxCachedSamples)
          found[chunk.index].push_back(s);
      }
    }
    counts[chunk.index] = count;
    swept.add(chunk.end - chunk.begin);
  });
  deadlock_count_ = 0;
  deadlock_samples_.clear();
  for (std::uint64_t c = 0; c < chunks; ++c) {
    deadlock_count_ += counts[c];
    for (GlobalStateId s : found[c])
      if (deadlock_samples_.size() < kMaxCachedSamples)
        deadlock_samples_.push_back(s);
  }
  if (obs::enabled())
    obs::counter("checker.invariant_states").add(mask.count());
  obs::counter("checker.deadlocks_found").add(deadlock_count_);
  inv_mask_ = std::move(mask);
  census_done_ = true;
}

void GlobalChecker::ensure_graph() const {
  if (graph_built_) return;
  ensure_masks();
  const GlobalStateId n = ring_->num_states();
  const obs::Span span("checker.graph_build");
  obs::Counter& swept = obs::counter("checker.states_swept");

  // Rank structure: word_rank_[w] = number of ¬I states in words [0, w), so
  // a successor's rank is one prefix read plus one popcount.
  const std::uint64_t words = inv_mask_.num_words();
  word_rank_.assign(words + 1, 0);
  for (std::uint64_t w = 0; w < words; ++w) {
    const std::uint64_t live = std::min<std::uint64_t>(64, n - w * 64);
    word_rank_[w + 1] =
        word_rank_[w] + live -
        static_cast<std::uint64_t>(std::popcount(inv_mask_.word(w)));
  }
  const std::uint64_t nni = words == 0 ? 0 : word_rank_[words];
  if (nni >> 32)
    throw CapacityError("fused engine: more than 2^32 states outside I");

  to_inv_.assign(nni);
  ni_ids_.assign(nni, 0);
  const std::uint64_t chunks = num_chunks(n, 0);
  struct ChunkGraph {
    std::vector<std::uint32_t> deg;  // per ¬I state of the chunk, ascending
    std::vector<std::uint32_t> col;  // concatenated successor ranks
    std::optional<std::pair<GlobalStateId, GlobalStateId>> violation;
  };
  std::vector<ChunkGraph> part(chunks);
  parallel_for(n, num_threads_, 0, [&](const ChunkRange& chunk, std::size_t) {
    ChunkGraph& mine = part[chunk.index];
    auto cur = ring_->cursor(chunk.begin);
    std::vector<RingInstance::Step> succ;
    // chunk.begin is a multiple of 64, so its rank is a word prefix.
    std::uint32_t r = static_cast<std::uint32_t>(word_rank_[chunk.begin >> 6]);
    for (GlobalStateId s = chunk.begin; s < chunk.end; ++s, cur.advance()) {
      if (inv_mask_.test(s)) {
        // Closure duty: only the chunk's first violation matters (the merge
        // below keeps the lowest), so later I-states skip the expansion.
        if (mine.violation) continue;
        cur.successors(succ);
        for (const auto& step : succ)
          if (!inv_mask_.test(step.target)) {
            mine.violation = {s, step.target};
            break;
          }
        continue;
      }
      cur.successors(succ);
      std::uint32_t deg = 0;
      bool into_inv = false;
      for (const auto& step : succ) {
        if (inv_mask_.test(step.target)) {
          into_inv = true;
          continue;
        }
        mine.col.push_back(rank_of(step.target));
        ++deg;
      }
      mine.deg.push_back(deg);
      // Rank-space bits are not chunk-word-aligned (chunks are 64-aligned
      // in *state* space), so neighbor chunks may share a to_inv_ word.
      if (into_inv) to_inv_.set_atomic(r);
      ni_ids_[r] = s;
      ++r;
    }
    swept.add(chunk.end - chunk.begin);
  });

  closure_ok_ = true;
  closure_violation_.reset();
  for (std::uint64_t c = 0; c < chunks && closure_ok_; ++c)
    if (part[c].violation) {
      closure_ok_ = false;
      closure_violation_ = part[c].violation;
    }

  csr_.row.assign(nni + 1, 0);
  std::vector<std::uint64_t> edge_base(chunks, 0);
  std::uint64_t total_edges = 0;
  {
    std::uint64_t r = 0;
    for (std::uint64_t c = 0; c < chunks; ++c) {
      edge_base[c] = total_edges;
      for (const std::uint32_t d : part[c].deg) {
        csr_.row[r + 1] = csr_.row[r] + d;
        total_edges += d;
        ++r;
      }
    }
    RINGSTAB_ASSERT(r == nni, "rank bookkeeping out of sync");
  }
  csr_.col.assign(total_edges, 0);
  parallel_for(chunks, num_threads_, 64,
               [&](const ChunkRange& ck, std::size_t) {
    for (std::uint64_t c = ck.begin; c < ck.end; ++c)
      std::copy(part[c].col.begin(), part[c].col.end(),
                csr_.col.begin() + edge_base[c]);
  });
  obs::counter("checker.graph_edges").add(total_edges);
  if (obs::enabled())
    obs::gauge("mem.csr_bytes")
        .set(csr_.row.size() * sizeof(csr_.row[0]) +
             csr_.col.size() * sizeof(csr_.col[0]));
  graph_built_ = true;
}

void GlobalChecker::ensure_scc() const {
  if (scc_done_) return;
  ensure_graph();
  const obs::Span span("checker.livelock_scc");
  scc_ = parallel_scc(csr_, num_threads_);
  scc_done_ = true;
}

std::size_t GlobalChecker::fused_weak_convergence() const {
  const std::uint64_t nni = to_inv_.size();
  const obs::Span span("checker.weak_convergence");
  obs::Counter& rounds = obs::counter("checker.fixpoint_rounds");
  obs::Counter& frontier = obs::counter("checker.frontier_states");
  // Backward fixpoint in rank space, as synchronous (Jacobi) rounds over
  // the CSR: to_inv_ acts as a constant edge into the (already reaching)
  // invariant, so the per-round growth — and the round count — matches the
  // full-space sweep of the unfused engine exactly.
  PackedBitset reaches(nni);
  PackedBitset next(nni);
  const std::uint64_t chunks = num_chunks(nni, 0);
  std::vector<std::uint8_t> chunk_changed(chunks, 0);
  while (true) {
    rounds.add(1);
    next = reaches;
    std::fill(chunk_changed.begin(), chunk_changed.end(), 0);
    parallel_for(nni, num_threads_, 0,
                 [&](const ChunkRange& chunk, std::size_t) {
      bool changed = false;
      std::uint64_t grew = 0;
      const std::uint64_t w1 = (chunk.end + 63) >> 6;
      for (std::uint64_t w = chunk.begin >> 6; w < w1;) {
        // 64-byte tiling: skip 8 fully-settled words at a time, then
        // whole words, so late rounds touch only the live frontier.
        if ((w & 7) == 0 && w + 8 <= w1 && tile_full(reaches, w)) {
          w += 8;
          continue;
        }
        std::uint64_t todo = ~reaches.word(w);
        const std::uint64_t base = w * 64;
        ++w;
        while (todo) {
          const std::uint64_t r =
              base + static_cast<std::uint64_t>(std::countr_zero(todo));
          todo &= todo - 1;
          if (r >= chunk.end) break;
          bool hit = to_inv_.test(r);
          for (std::uint64_t e = csr_.row[r]; !hit && e < csr_.row[r + 1];
               ++e)
            hit = reaches.test(csr_.col[e]);
          if (hit) {
            next.set(r);
            changed = true;
            ++grew;
          }
        }
      }
      chunk_changed[chunk.index] = changed;
      frontier.add(grew);
    });
    if (std::find(chunk_changed.begin(), chunk_changed.end(), 1) ==
        chunk_changed.end())
      break;
    std::swap(reaches, next);
  }
  return reaches.count();
}

std::size_t GlobalChecker::fused_recovery_steps() const {
  const std::uint64_t nni = to_inv_.size();
  const obs::Span span("checker.recovery_layering");
  // Each ¬I state resolves its depth exactly once in both engines, so the
  // total is thread-count-invariant: |¬I| states.
  obs::Counter& resolved_ctr = obs::counter("checker.recovery_resolved");
  if (num_threads_ <= 1) {
    // Longest path to I over the CSR (valid when strongly converging):
    // memoized DFS; to_inv_ contributes the 1-step edges into I.
    constexpr std::uint32_t kUnknown = 0xfffffffeu;
    constexpr std::uint32_t kInProgress = 0xfffffffdu;
    std::vector<std::uint32_t> depth(nni, kUnknown);
    std::size_t best = 0;
    std::uint64_t serial_resolved = 0;
    auto dfs = [&](auto&& self, std::uint32_t r) -> std::uint32_t {
      if (depth[r] == kInProgress)
        throw ModelError("cycle outside I: not strongly converging");
      if (depth[r] != kUnknown) return depth[r];
      depth[r] = kInProgress;
      const std::uint64_t lo = csr_.row[r], hi = csr_.row[r + 1];
      if (lo == hi && !to_inv_.test(r))
        throw ModelError("deadlock outside I: not strongly converging");
      std::uint32_t d = to_inv_.test(r) ? 1 : 0;
      for (std::uint64_t e = lo; e < hi; ++e)
        d = std::max(d, 1 + self(self, csr_.col[e]));
      depth[r] = d;
      ++serial_resolved;
      return d;
    };
    for (std::uint32_t r = 0; r < nni; ++r)
      best = std::max<std::size_t>(best, dfs(dfs, r));
    resolved_ctr.add(serial_resolved);
    return best;
  }

  // Parallel layering: a state resolves to max(1 if it steps into I, 1 +
  // resolved successor depths) once every CSR successor has resolved.
  // Depths are set at most once and never change, so in-place relaxed
  // publication is safe and the fixpoint is schedule-independent.
  constexpr std::uint32_t kUnknown = 0xffffffffu;
  std::vector<std::uint32_t> depth(nni, kUnknown);
  PackedBitset done(nni);  // chunk-private words: plain set() below
  std::uint64_t remaining = nni;
  const std::uint64_t chunks = num_chunks(nni, 0);
  std::vector<std::uint64_t> resolved(chunks);
  std::vector<std::uint32_t> chunk_best(chunks);
  std::size_t best = 0;
  while (remaining > 0) {
    std::fill(resolved.begin(), resolved.end(), 0);
    std::fill(chunk_best.begin(), chunk_best.end(), 0);
    parallel_for(nni, num_threads_, 0,
                 [&](const ChunkRange& chunk, std::size_t) {
      const std::uint64_t w1 = (chunk.end + 63) >> 6;
      for (std::uint64_t w = chunk.begin >> 6; w < w1;) {
        if ((w & 7) == 0 && w + 8 <= w1 && tile_full(done, w)) {
          w += 8;
          continue;
        }
        std::uint64_t todo = ~done.word(w);
        const std::uint64_t base = w * 64;
        ++w;
        while (todo) {
          const std::uint64_t r =
              base + static_cast<std::uint64_t>(std::countr_zero(todo));
          todo &= todo - 1;
          if (r >= chunk.end) break;
          const std::uint64_t lo = csr_.row[r], hi = csr_.row[r + 1];
          if (lo == hi && !to_inv_.test(r))
            throw ModelError("deadlock outside I: not strongly converging");
          std::uint32_t d = to_inv_.test(r) ? 1 : 0;
          bool all_known = true;
          for (std::uint64_t e = lo; e < hi; ++e) {
            std::atomic_ref<std::uint32_t> theirs(depth[csr_.col[e]]);
            const std::uint32_t t = theirs.load(std::memory_order_relaxed);
            if (t == kUnknown) {
              all_known = false;
              break;
            }
            d = std::max(d, 1 + t);
          }
          if (!all_known) continue;
          std::atomic_ref<std::uint32_t> mine(depth[r]);
          mine.store(d, std::memory_order_relaxed);
          done.set(r);
          ++resolved[chunk.index];
          chunk_best[chunk.index] = std::max(chunk_best[chunk.index], d);
        }
      }
    });
    std::uint64_t progress = 0;
    for (std::uint64_t c = 0; c < chunks; ++c) {
      progress += resolved[c];
      best = std::max<std::size_t>(best, chunk_best[c]);
    }
    if (progress == 0)
      throw ModelError("cycle outside I: not strongly converging");
    resolved_ctr.add(progress);
    remaining -= progress;
  }
  return best;
}

// ---------------------------------------------------------------------------
// Public interface: each query dispatches to the fused pipeline or to the
// original pass-per-question engine.
// ---------------------------------------------------------------------------

const PackedBitset& GlobalChecker::invariant_mask() const {
  if (fused_) {
    ensure_masks();
    return inv_mask_;
  }
  const GlobalStateId n = ring_->num_states();
  if (inv_mask_.size() == n) return inv_mask_;  // already built (n > 0)
  const obs::Span span("checker.invariant_mask");
  obs::Counter& swept = obs::counter("checker.states_swept");
  PackedBitset mask(n);
  // Chunks start on multiples of a 64-aligned grain, so each chunk's bits
  // live in chunk-private words: plain set() is race-free.
  parallel_for(n, num_threads_, 0, [&](const ChunkRange& chunk, std::size_t) {
    auto cur = ring_->cursor(chunk.begin);
    for (GlobalStateId s = chunk.begin; s < chunk.end; ++s, cur.advance())
      if (cur.in_invariant()) mask.set(s);
    swept.add(chunk.end - chunk.begin);
  });
  if (obs::enabled())
    obs::counter("checker.invariant_states").add(mask.count());
  inv_mask_ = std::move(mask);
  return inv_mask_;
}

std::size_t GlobalChecker::count_deadlocks_outside_invariant(
    std::vector<GlobalStateId>* samples, std::size_t max_samples) const {
  if (fused_) {
    ensure_masks();
    const bool cache_covers =
        !samples || max_samples <= kMaxCachedSamples ||
        deadlock_samples_.size() >=
            std::min<std::size_t>(deadlock_count_, max_samples);
    if (cache_covers) {
      if (samples)
        for (GlobalStateId s : deadlock_samples_)
          if (samples->size() < max_samples) samples->push_back(s);
      return deadlock_count_;
    }
  }
  const GlobalStateId n = ring_->num_states();
  const PackedBitset& in_inv = invariant_mask();
  const obs::Span span("checker.deadlock_census");
  obs::Counter& swept = obs::counter("checker.states_swept");
  const std::uint64_t chunks = num_chunks(n, 0);
  std::vector<std::size_t> counts(chunks, 0);
  std::vector<std::vector<GlobalStateId>> found(samples ? chunks : 0);
  parallel_for(n, num_threads_, 0, [&](const ChunkRange& chunk, std::size_t) {
    auto cur = ring_->cursor(chunk.begin);
    std::size_t count = 0;
    for (GlobalStateId s = chunk.begin; s < chunk.end; ++s, cur.advance()) {
      if (in_inv.test(s)) continue;
      if (!cur.is_deadlock()) continue;
      ++count;
      if (samples && found[chunk.index].size() < max_samples)
        found[chunk.index].push_back(s);
    }
    counts[chunk.index] = count;
    swept.add(chunk.end - chunk.begin);
  });
  std::size_t count = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    count += counts[c];
    if (samples)
      for (GlobalStateId s : found[c])
        if (samples->size() < max_samples) samples->push_back(s);
  }
  obs::counter("checker.deadlocks_found").add(count);
  return count;
}

void GlobalChecker::ensure_tarjan() const {
  if (tarjan_done_) return;
  OutsideInvariantScc scc(*ring_, invariant_mask());
  const obs::Span span("checker.tarjan_livelock");
  scc.run();
  std::sort(scc.cycle_states.begin(), scc.cycle_states.end());
  tarjan_witness_ = std::move(scc.witness_cycle);
  tarjan_states_ = std::move(scc.cycle_states);
  tarjan_done_ = true;
}

std::optional<std::vector<GlobalStateId>> GlobalChecker::find_livelock()
    const {
  if (!fused_) {
    ensure_tarjan();
    return tarjan_witness_;
  }
  ensure_scc();
  // Canonical witness anchor: the smallest-ranked state on any ¬I cycle.
  std::uint64_t start = kUnvisited;
  for (std::uint64_t w = 0; w < scc_.nontrivial.num_words(); ++w) {
    const std::uint64_t word = scc_.nontrivial.word(w) | scc_.self_loop.word(w);
    if (word) {
      start = w * 64 + static_cast<std::uint64_t>(std::countr_zero(word));
      break;
    }
  }
  if (start == kUnvisited) return std::nullopt;
  const auto ranks = extract_component_cycle(
      csr_, scc_, static_cast<std::uint32_t>(start));
  std::vector<GlobalStateId> cycle;
  cycle.reserve(ranks.size());
  for (const std::uint32_t r : ranks) cycle.push_back(ni_ids_[r]);
  return cycle;
}

std::vector<GlobalStateId> GlobalChecker::livelock_states() const {
  if (!fused_) {
    ensure_tarjan();
    return tarjan_states_;
  }
  ensure_scc();
  std::vector<GlobalStateId> out;
  for (std::uint64_t w = 0; w < scc_.nontrivial.num_words(); ++w) {
    std::uint64_t word = scc_.nontrivial.word(w) | scc_.self_loop.word(w);
    while (word) {
      const std::uint64_t r =
          w * 64 + static_cast<std::uint64_t>(std::countr_zero(word));
      word &= word - 1;
      out.push_back(ni_ids_[r]);
    }
  }
  return out;  // ni_ids_ is ascending, so the result is sorted
}

bool GlobalChecker::check_closure(
    std::optional<std::pair<GlobalStateId, GlobalStateId>>* violation) const {
  if (fused_) {
    ensure_graph();
    if (!closure_ok_ && violation) *violation = *closure_violation_;
    return closure_ok_;
  }
  const GlobalStateId n = ring_->num_states();
  const PackedBitset& in_inv = invariant_mask();
  const obs::Span span("checker.closure");
  // Own counter, not states_swept: the early exit on a violation makes the
  // closure scan's coverage depend on chunk timing, while states_swept is
  // kept exact and thread-count-invariant.
  obs::Counter& swept =
      obs::counter("checker.closure_states_scanned", /*approx=*/true);
  const std::uint64_t chunks = num_chunks(n, 0);
  using Violation = std::pair<GlobalStateId, GlobalStateId>;
  std::vector<std::optional<Violation>> found(chunks);
  // The serial engine reports the violation with the smallest source state.
  // Chunks above the lowest chunk known to hold one can stop early; the
  // merge picks the lowest chunk, so the reported pair is identical for
  // every thread count.
  std::atomic<std::uint64_t> first_chunk{chunks};
  parallel_for(n, num_threads_, 0,
               [&](const ChunkRange& chunk, std::size_t) {
    if (chunk.index > first_chunk.load(std::memory_order_relaxed)) return;
    auto cur = ring_->cursor(chunk.begin);
    std::vector<RingInstance::Step> succ;
    swept.add(chunk.end - chunk.begin);
    for (GlobalStateId s = chunk.begin; s < chunk.end; ++s, cur.advance()) {
      if (!in_inv.test(s)) continue;
      cur.successors(succ);
      for (const auto& step : succ) {
        if (!in_inv.test(step.target)) {
          found[chunk.index] = {s, step.target};
          std::uint64_t prev = first_chunk.load(std::memory_order_relaxed);
          while (chunk.index < prev &&
                 !first_chunk.compare_exchange_weak(
                     prev, chunk.index, std::memory_order_relaxed)) {
          }
          return;
        }
      }
    }
  });
  for (std::uint64_t c = 0; c < chunks; ++c) {
    if (found[c]) {
      if (violation) *violation = *found[c];
      return false;
    }
  }
  return true;
}

bool GlobalChecker::check_weak_convergence() const {
  if (fused_) {
    ensure_graph();
    return fused_weak_convergence() == to_inv_.size();
  }
  const GlobalStateId n = ring_->num_states();
  // Backward fixpoint over the implicit graph, as synchronous (Jacobi)
  // rounds: a round reads `reaches`, writes `next`, and the two swap. The
  // fixpoint is the same set the seed's in-place scan computed.
  PackedBitset reaches = invariant_mask();
  const obs::Span span("checker.weak_convergence");
  obs::Counter& rounds = obs::counter("checker.fixpoint_rounds");
  obs::Counter& frontier = obs::counter("checker.frontier_states");
  PackedBitset next(n);
  const std::uint64_t chunks = num_chunks(n, 0);
  std::vector<std::uint8_t> chunk_changed(chunks, 0);
  while (true) {
    rounds.add(1);
    next = reaches;
    std::fill(chunk_changed.begin(), chunk_changed.end(), 0);
    parallel_for(n, num_threads_, 0,
                 [&](const ChunkRange& chunk, std::size_t) {
      auto cur = ring_->cursor(chunk.begin);
      std::vector<RingInstance::Step> succ;
      bool changed = false;
      std::uint64_t grew = 0;
      for (GlobalStateId s = chunk.begin; s < chunk.end; ++s, cur.advance()) {
        if (reaches.test(s)) continue;
        cur.successors(succ);
        for (const auto& step : succ) {
          if (reaches.test(step.target)) {
            next.set(s);
            changed = true;
            ++grew;
            break;
          }
        }
      }
      chunk_changed[chunk.index] = changed;
      frontier.add(grew);
    });
    if (std::find(chunk_changed.begin(), chunk_changed.end(), 1) ==
        chunk_changed.end())
      break;
    std::swap(reaches, next);
  }
  return reaches.count() == n;
}

std::size_t GlobalChecker::max_recovery_steps() const {
  if (fused_) {
    ensure_graph();
    return fused_recovery_steps();
  }
  const GlobalStateId n = ring_->num_states();
  const PackedBitset& in_inv = invariant_mask();
  const obs::Span span("checker.recovery_layering");
  // Each ¬I state resolves its depth exactly once in both engines, so the
  // total is thread-count-invariant: |¬I| states.
  obs::Counter& resolved_ctr = obs::counter("checker.recovery_resolved");
  if (num_threads_ <= 1) {
    // Longest path in the ¬I subgraph, all of whose maximal paths end in I
    // (valid when strongly converging). Memoized DFS.
    constexpr std::uint32_t kUnknown = 0xfffffffeu;
    constexpr std::uint32_t kInProgress = 0xfffffffdu;
    std::vector<std::uint32_t> depth(n, kUnknown);

    std::size_t best = 0;
    std::uint64_t serial_resolved = 0;
    auto dfs = [&](auto&& self, GlobalStateId s) -> std::uint32_t {
      if (in_inv.test(s)) return 0;
      if (depth[s] == kInProgress)
        throw ModelError("cycle outside I: not strongly converging");
      if (depth[s] != kUnknown) return depth[s];
      depth[s] = kInProgress;
      std::vector<RingInstance::Step> local;
      ring_->successors(s, local);
      if (local.empty())
        throw ModelError("deadlock outside I: not strongly converging");
      std::uint32_t d = 0;
      for (const auto& step : local)
        d = std::max(d, 1 + self(self, step.target));
      depth[s] = d;
      ++serial_resolved;
      return d;
    };
    for (GlobalStateId s = 0; s < n; ++s)
      best = std::max<std::size_t>(best, dfs(dfs, s));
    resolved_ctr.add(serial_resolved);
    return best;
  }

  // Parallel layering: depth(s in I) = 0; a state resolves to 1 + max of
  // its successors' depths once all of them have resolved. Depths are set
  // at most once and never change, so in-place relaxed publication is safe
  // and the fixpoint (the exact longest path to I) is the same as the
  // serial DFS for every thread count and schedule.
  constexpr std::uint32_t kUnknown = 0xffffffffu;
  std::vector<std::uint32_t> depth(n);
  parallel_for(n, num_threads_, 0, [&](const ChunkRange& chunk, std::size_t) {
    for (GlobalStateId s = chunk.begin; s < chunk.end; ++s)
      depth[s] = in_inv.test(s) ? 0 : kUnknown;
  });
  std::uint64_t remaining = n - in_inv.count();
  const std::uint64_t chunks = num_chunks(n, 0);
  std::vector<std::uint64_t> resolved(chunks);
  std::vector<std::uint32_t> chunk_best(chunks);
  std::size_t best = 0;
  while (remaining > 0) {
    std::fill(resolved.begin(), resolved.end(), 0);
    std::fill(chunk_best.begin(), chunk_best.end(), 0);
    parallel_for(n, num_threads_, 0,
                 [&](const ChunkRange& chunk, std::size_t) {
      auto cur = ring_->cursor(chunk.begin);
      std::vector<RingInstance::Step> succ;
      for (GlobalStateId s = chunk.begin; s < chunk.end; ++s, cur.advance()) {
        std::atomic_ref<std::uint32_t> mine(depth[s]);
        if (mine.load(std::memory_order_relaxed) != kUnknown) continue;
        cur.successors(succ);
        if (succ.empty())
          throw ModelError("deadlock outside I: not strongly converging");
        std::uint32_t d = 0;
        bool all_known = true;
        for (const auto& step : succ) {
          std::atomic_ref<std::uint32_t> theirs(depth[step.target]);
          const std::uint32_t t = theirs.load(std::memory_order_relaxed);
          if (t == kUnknown) {
            all_known = false;
            break;
          }
          d = std::max(d, 1 + t);
        }
        if (!all_known) continue;
        mine.store(d, std::memory_order_relaxed);
        ++resolved[chunk.index];
        chunk_best[chunk.index] = std::max(chunk_best[chunk.index], d);
      }
    });
    std::uint64_t progress = 0;
    for (std::uint64_t c = 0; c < chunks; ++c) {
      progress += resolved[c];
      best = std::max<std::size_t>(best, chunk_best[c]);
    }
    if (progress == 0)
      throw ModelError("cycle outside I: not strongly converging");
    resolved_ctr.add(progress);
    remaining -= progress;
  }
  return best;
}

GlobalCheckResult GlobalChecker::check_all() const {
  const obs::Span span("checker.check_all");
  GlobalCheckResult res;
  res.ring_size = ring_->ring_size();
  res.num_states = ring_->num_states();
  res.num_deadlocks_outside_i =
      count_deadlocks_outside_invariant(&res.deadlock_samples);
  auto cycle = find_livelock();
  res.has_livelock = cycle.has_value();
  if (cycle) res.livelock_cycle = std::move(*cycle);
  res.closure_ok = check_closure(&res.closure_violation);
  res.weakly_converges = check_weak_convergence();
  if (res.strongly_converges()) res.max_recovery_steps = max_recovery_steps();
  return res;
}

bool strongly_stabilizing(const RingInstance& ring, std::size_t num_threads) {
  const GlobalChecker checker(ring, num_threads);
  if (!checker.check_closure()) return false;
  if (checker.count_deadlocks_outside_invariant() > 0) return false;
  return !checker.find_livelock().has_value();
}

}  // namespace ringstab
