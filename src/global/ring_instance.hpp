// A parameterized protocol instantiated on a concrete ring of size K.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "local/precedence.hpp"  // ScheduledStep

namespace ringstab {

/// Explicit-state view of p(K): global states are mixed-radix uint64 codes
/// of the K ring variables. This is the substrate for the "global reasoning"
/// baseline the paper contrasts with (model checking / fixed-K synthesis).
class RingInstance {
 public:
  /// Throws CapacityError if |D|^K exceeds `max_states` (default 2^24) or
  /// does not fit in 64 bits.
  RingInstance(Protocol protocol, std::size_t ring_size,
               GlobalStateId max_states = GlobalStateId{1} << 24);

  const Protocol& protocol() const { return protocol_; }
  std::size_t ring_size() const { return k_; }
  GlobalStateId num_states() const { return num_states_; }

  Value value(GlobalStateId s, std::size_t i) const {
    return static_cast<Value>((s / pow_[i]) % d_);
  }
  std::vector<Value> decode(GlobalStateId s) const;
  GlobalStateId encode(std::span<const Value> ring) const;

  /// Local state of process i (its readable window) in global state s.
  LocalStateId local_state(GlobalStateId s, std::size_t i) const;

  bool process_enabled(GlobalStateId s, std::size_t i) const {
    return protocol_.is_enabled(local_state(s, i));
  }

  /// s ∈ I(K): every process satisfies LC_r.
  bool in_invariant(GlobalStateId s) const;

  bool is_deadlock(GlobalStateId s) const;

  /// One outgoing global transition.
  struct Step {
    GlobalStateId target = 0;
    std::size_t process = 0;
    LocalTransition transition;
  };

  /// All outgoing global transitions of s (interleaving semantics: one
  /// process moves). Appended to `out` (cleared first).
  void successors(GlobalStateId s, std::vector<Step>& out) const;

  /// Number of enabled processes in s.
  std::size_t num_enabled(GlobalStateId s) const;

  /// Compact dump using domain abbreviations, e.g. "lsrls".
  std::string brief(GlobalStateId s) const;

 private:
  Protocol protocol_;
  std::size_t k_;
  std::size_t d_;
  GlobalStateId num_states_;
  std::vector<GlobalStateId> pow_;
};

/// Recover the interleaving schedule along a path of global states
/// (consecutive states must differ in exactly one process's variable by a
/// δ_r transition). Throws ModelError if the path is not a computation.
Schedule schedule_from_path(const RingInstance& ring,
                            std::span<const GlobalStateId> path,
                            bool cyclic = false);

}  // namespace ringstab
