// A parameterized protocol instantiated on a concrete ring of size K.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "local/precedence.hpp"  // ScheduledStep

namespace ringstab {

/// Explicit-state view of p(K): global states are mixed-radix uint64 codes
/// of the K ring variables. This is the substrate for the "global reasoning"
/// baseline the paper contrasts with (model checking / fixed-K synthesis).
///
/// Construction precomputes three tables that keep the per-state work of
/// full-space sweeps division-free:
///  * a per-local-state flag byte (legit? enabled?) so predicate checks are
///    one table read instead of a Protocol query;
///  * the window powers |D|^p, so a local state is a Horner sum over the
///    window digits;
///  * the wrapped ring index of every (process, window offset) pair, so no
///    modulo is taken while scanning.
/// Sweeps should decode a state's digits once (or roll them forward with
/// Cursor) and reuse them for all K processes.
class RingInstance {
 public:
  /// Throws CapacityError if |D|^K exceeds `max_states` (default 2^24) or
  /// does not fit in 64 bits.
  RingInstance(Protocol protocol, std::size_t ring_size,
               GlobalStateId max_states = GlobalStateId{1} << 24);

  const Protocol& protocol() const { return protocol_; }
  std::size_t ring_size() const { return k_; }
  GlobalStateId num_states() const { return num_states_; }
  std::size_t domain_size() const { return d_; }

  /// Bits returned by Cursor::classify().
  static constexpr std::uint8_t kClassInvariant = 1;  // s ∈ I(K)
  static constexpr std::uint8_t kClassDeadlock = 2;   // no process enabled

  Value value(GlobalStateId s, std::size_t i) const {
    return static_cast<Value>((s / pow_[i]) % d_);
  }
  /// pow_[i] = |D|^i, the mixed-radix place values (pow_[0] = 1).
  const std::vector<GlobalStateId>& powers() const { return pow_; }
  std::vector<Value> decode(GlobalStateId s) const;
  /// decode() into a caller-owned buffer (resized to K); the only divisions
  /// a sweep needs per state.
  void decode_into(GlobalStateId s, std::vector<Value>& digits) const;
  GlobalStateId encode(std::span<const Value> ring) const;

  /// Local state of process i (its readable window) in global state s.
  LocalStateId local_state(GlobalStateId s, std::size_t i) const;

  /// Local state of process i from predecoded digits: a division-free
  /// Horner sum over the window (digits must have length K).
  LocalStateId local_state_from(const Value* digits, std::size_t i) const {
    const std::uint32_t* idx = widx_.data() + i * window_;
    LocalStateId ls = 0;
    for (std::size_t p = 0; p < window_; ++p)
      ls += static_cast<LocalStateId>(digits[idx[p]]) * lpow_[p];
    return ls;
  }

  /// Precomputed LC_r / enablement of a local state (one byte read).
  bool legit_local(LocalStateId ls) const { return local_flags_[ls] & kLegit; }
  bool enabled_local(LocalStateId ls) const {
    return local_flags_[ls] & kEnabled;
  }

  bool process_enabled(GlobalStateId s, std::size_t i) const {
    return enabled_local(local_state(s, i));
  }

  /// s ∈ I(K): every process satisfies LC_r.
  bool in_invariant(GlobalStateId s) const;

  bool is_deadlock(GlobalStateId s) const;

  /// One outgoing global transition.
  struct Step {
    GlobalStateId target = 0;
    std::size_t process = 0;
    LocalTransition transition;
  };

  /// All outgoing global transitions of s (interleaving semantics: one
  /// process moves). Appended to `out` (cleared first).
  void successors(GlobalStateId s, std::vector<Step>& out) const;

  /// successors() from predecoded digits of s (division-free).
  void successors_from(GlobalStateId s, const Value* digits,
                       std::vector<Step>& out) const;

  /// Number of enabled processes in s.
  std::size_t num_enabled(GlobalStateId s) const;

  /// Compact dump using domain abbreviations, e.g. "lsrls".
  std::string brief(GlobalStateId s) const;

  /// Rolling decoder for dense state-space sweeps: holds the digit vector
  /// of the current state and advances by one with a mixed-radix carry —
  /// O(1) amortized, no division. All predicates run off the digit vector
  /// and the precomputed tables.
  class Cursor {
   public:
    Cursor(const RingInstance& ring, GlobalStateId start)
        : ring_(&ring), s_(start) {
      ring.decode_into(start, digits_);
    }

    GlobalStateId state() const { return s_; }
    const std::vector<Value>& digits() const { return digits_; }

    /// Move to state s+1 (carry-propagating increment of the digits).
    void advance() {
      ++s_;
      const Value top = static_cast<Value>(ring_->d_ - 1);
      for (std::size_t i = 0; i < digits_.size(); ++i) {
        if (digits_[i] != top) {
          ++digits_[i];
          return;
        }
        digits_[i] = 0;
      }
    }

    LocalStateId local_state(std::size_t i) const {
      return ring_->local_state_from(digits_.data(), i);
    }
    bool in_invariant() const {
      for (std::size_t i = 0; i < digits_.size(); ++i)
        if (!ring_->legit_local(local_state(i))) return false;
      return true;
    }
    bool is_deadlock() const {
      for (std::size_t i = 0; i < digits_.size(); ++i)
        if (ring_->enabled_local(local_state(i))) return false;
      return true;
    }
    /// Both sweep predicates in one walk over the processes: each local
    /// state is read once and its flag byte settles both bits (an enabled
    /// process kills kClassDeadlock, a non-legit one kills kClassInvariant),
    /// with an early exit once neither bit survives. This is what lets the
    /// fused census pass replace the separate in_invariant()/is_deadlock()
    /// sweeps without touching a state twice.
    std::uint8_t classify() const {
      std::uint8_t out = kClassInvariant | kClassDeadlock;
      for (std::size_t i = 0; i < digits_.size() && out; ++i) {
        const std::uint8_t f = ring_->local_flags_[local_state(i)];
        if (f & kEnabled) out &= ~kClassDeadlock;
        if (!(f & kLegit)) out &= ~kClassInvariant;
      }
      return out;
    }
    std::size_t num_enabled() const {
      std::size_t n = 0;
      for (std::size_t i = 0; i < digits_.size(); ++i)
        if (ring_->enabled_local(local_state(i))) ++n;
      return n;
    }
    void successors(std::vector<Step>& out) const {
      ring_->successors_from(s_, digits_.data(), out);
    }

   private:
    const RingInstance* ring_;
    GlobalStateId s_;
    std::vector<Value> digits_;
  };

  Cursor cursor(GlobalStateId start = 0) const { return Cursor(*this, start); }

 private:
  static constexpr std::uint8_t kLegit = 1;
  static constexpr std::uint8_t kEnabled = 2;

  Protocol protocol_;
  std::size_t k_;
  std::size_t d_;
  std::size_t window_;
  GlobalStateId num_states_;
  std::vector<GlobalStateId> pow_;
  std::vector<LocalStateId> lpow_;        // |D|^p over the window
  std::vector<std::uint32_t> widx_;       // widx_[i*window + p]: ring index
  std::vector<std::uint8_t> local_flags_; // kLegit | kEnabled per local state
};

/// Recover the interleaving schedule along a path of global states
/// (consecutive states must differ in exactly one process's variable by a
/// δ_r transition). Throws ModelError if the path is not a computation.
Schedule schedule_from_path(const RingInstance& ring,
                            std::span<const GlobalStateId> path,
                            bool cyclic = false);

}  // namespace ringstab
