#include "global/necklace.hpp"

namespace ringstab {

GlobalStateId canonical_necklace_id(const Value* digits, std::size_t k,
                                    std::span<const GlobalStateId> pow) {
  // Work on the most-significant-first view v[j] = digits[k-1-j], so that
  // lexicographic order on v equals numeric order on the encoding; Duval's
  // least-rotation scan over the conceptually doubled v is O(k) with no
  // allocation.
  auto at = [&](std::size_t j) { return digits[k - 1 - (j % k)]; };
  std::size_t i = 0, best = 0;
  while (i < k) {
    best = i;
    std::size_t j = i + 1, l = i;
    while (j < 2 * k && at(l) <= at(j)) {
      if (at(l) < at(j))
        l = i;
      else
        ++l;
      ++j;
    }
    while (i <= l) i += j - l;
  }
  GlobalStateId id = 0;
  for (std::size_t j = 0; j < k; ++j)
    id += GlobalStateId{digits[k - 1 - ((best + j) % k)]} * pow[k - 1 - j];
  return id;
}

std::size_t cyclic_period(const Value* digits, std::size_t k) {
  for (std::size_t r = 1; r < k; ++r) {
    if (k % r != 0) continue;
    bool fixed = true;
    for (std::size_t i = 0; i < k && fixed; ++i)
      fixed = digits[(i + r) % k] == digits[i];
    if (fixed) return r;
  }
  return k;
}

NecklaceEnumerator::NecklaceEnumerator(std::size_t ring_size,
                                       std::size_t domain_size)
    : k_(ring_size), d_(domain_size) {
  RINGSTAB_ASSERT(k_ >= 1 && d_ >= 1,
                  "necklace enumeration needs K >= 1 and |D| >= 1");
  pow_.reserve(k_);
  GlobalStateId n = 1;
  for (std::size_t i = 0; i < k_; ++i) {
    pow_.push_back(n);
    n *= d_;
  }
  // Enough subtrees that chunked scheduling balances the (skewed) necklace
  // distribution, few enough that per-slot prefix validation is noise.
  constexpr std::uint64_t kMinSlots = 4096;
  prefix_len_ = 1;
  num_slots_ = d_;
  while (prefix_len_ < k_ && num_slots_ < kMinSlots) {
    ++prefix_len_;
    num_slots_ *= d_;
  }
}

bool NecklaceEnumerator::seed_slot(std::uint64_t slot, Value* a, Value* digits,
                                   std::size_t& p,
                                   GlobalStateId& partial) const {
  std::uint64_t rem = slot;
  for (std::size_t t = prefix_len_; t >= 1; --t) {
    a[t] = static_cast<Value>(rem % d_);
    rem /= d_;
  }
  // Incremental FKM period of the prefix: a value below a[t-p] can never
  // appear in a prenecklace, so such prefixes head empty subtrees.
  p = 1;
  for (std::size_t t = 2; t <= prefix_len_; ++t) {
    if (a[t] == a[t - p]) continue;
    if (a[t] < a[t - p]) return false;
    p = t;
  }
  partial = 0;
  for (std::size_t t = 1; t <= prefix_len_; ++t) {
    digits[k_ - t] = a[t];
    partial += GlobalStateId{a[t]} * pow_[k_ - t];
  }
  return true;
}

std::uint64_t count_necklaces(std::size_t k, std::size_t d) {
  const NecklaceEnumerator enumerator(k, d);
  std::uint64_t count = 0;
  enumerator.visit_all(
      [&](const Value*, GlobalStateId, std::uint32_t) { ++count; });
  return count;
}

}  // namespace ringstab
