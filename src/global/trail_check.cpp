#include "global/trail_check.hpp"

#include <algorithm>

#include "global/checker.hpp"

namespace ringstab {

const char* to_string(TrailRealization r) {
  switch (r) {
    case TrailRealization::kRealized: return "realized";
    case TrailRealization::kOtherLivelock: return "other-livelock-at-K";
    case TrailRealization::kSpurious: return "spurious";
    case TrailRealization::kNotInstantiable: return "not-instantiable";
  }
  return "?";
}

TrailRealizationResult realize_trail(const Protocol& p,
                                     const ContiguousTrail& trail,
                                     std::size_t num_threads) {
  TrailRealizationResult res;
  const std::size_t k = static_cast<std::size_t>(trail.implied_ring_size());
  res.ring_size = k;
  const auto& space = p.space();
  if (k < static_cast<std::size_t>(space.locality().window()) || k < 2)
    return res;

  const int e = trail.num_enabled;
  const int pp = trail.propagation;
  RINGSTAB_ASSERT(trail.steps.size() >=
                      static_cast<std::size_t>((e - 1) + 2 * pp),
                  "trail shorter than one round");

  // Local states at round start: processes 0..E-1 are the w1 segment
  // (sources of the w1 s-arcs plus the firing vertex); processes E..K-1 are
  // the first round's w2 s-arc targets (their windows after the write equal
  // their round-start windows except for the incoming x value, whose own
  // variable is unchanged — we only take self()).
  std::vector<Value> ring(k, 0);
  for (int i = 0; i < e; ++i) {
    const LocalStateId v =
        (i == 0) ? trail.steps[0].from : trail.steps[static_cast<std::size_t>(i - 1)].to;
    ring[static_cast<std::size_t>(i)] = space.self(v);
  }
  for (int j = 0; j < pp; ++j) {
    const std::size_t s_step = static_cast<std::size_t>((e - 1) + 2 * j + 1);
    ring[static_cast<std::size_t>(e + j)] =
        space.self(trail.steps[s_step].to);
  }

  // Consistency: the segment processes' windows must be the w1 vertices.
  for (int i = 0; i < e; ++i) {
    const LocalStateId expect =
        (i == 0) ? trail.steps[0].from : trail.steps[static_cast<std::size_t>(i - 1)].to;
    if (local_state_of(p, ring, static_cast<std::size_t>(i)) != expect)
      return res;  // kNotInstantiable
  }
  res.start_state = ring;

  const RingInstance inst(p, k);
  const GlobalChecker checker(inst, num_threads);
  const auto livelock_states = checker.livelock_states();
  if (livelock_states.empty()) {
    res.verdict = TrailRealization::kSpurious;
    return res;
  }
  const GlobalStateId s = inst.encode(ring);
  res.verdict = std::binary_search(livelock_states.begin(),
                                   livelock_states.end(), s)
                    ? TrailRealization::kRealized
                    : TrailRealization::kOtherLivelock;
  return res;
}

}  // namespace ringstab
