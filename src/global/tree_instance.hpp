// In-tree topology: every process reads its parent (the paper's Def. 4.1
// remark sketches RCG construction for trees). For parent-read localities
// (reads x[-1]..x[0]) the deadlock theory REDUCES to the array case: a
// deadlocked tree outside I exists for some tree shape iff a deadlocked
// array exists for some length — path trees are trees, and any bad tree
// contains a bad root-to-node path. This class provides the exhaustive
// ground truth used to validate that reduction.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "local/array.hpp"

namespace ringstab {

/// A rooted in-tree of n processes running an array-convention protocol
/// (domain's last value = ⊥). Node 0 is the root (its window's parent slot
/// is ⊥); parent[i] < i for every other node. The locality must be
/// {left=1, right=0}.
class TreeInstance {
 public:
  TreeInstance(Protocol protocol, std::vector<std::size_t> parent,
               GlobalStateId max_states = GlobalStateId{1} << 22);

  const Protocol& protocol() const { return protocol_; }
  std::size_t size() const { return parent_.size() + 1; }
  GlobalStateId num_states() const { return num_states_; }

  Value value(GlobalStateId s, std::size_t i) const {
    return static_cast<Value>((s / pow_[i]) % real_d_);
  }
  std::vector<Value> decode(GlobalStateId s) const;
  GlobalStateId encode(std::span<const Value> values) const;

  /// Parent of node i (i ≥ 1).
  std::size_t parent(std::size_t i) const { return parent_[i - 1]; }

  LocalStateId local_state(GlobalStateId s, std::size_t i) const;
  bool in_invariant(GlobalStateId s) const;
  bool is_deadlock(GlobalStateId s) const;

  struct Step {
    GlobalStateId target = 0;
    std::size_t process = 0;
    LocalTransition transition;
  };
  void successors(GlobalStateId s, std::vector<Step>& out) const;

  std::string brief(GlobalStateId s) const;

 private:
  Protocol protocol_;
  std::vector<std::size_t> parent_;  // parent_[i-1] = parent of node i
  std::size_t real_d_;
  GlobalStateId num_states_;
  std::vector<GlobalStateId> pow_;
};

struct TreeCheckResult {
  std::size_t num_deadlocks_outside_i = 0;
  bool has_livelock = false;
  bool terminates = false;
};

/// Exhaustive check (explicit digraph; capped state space).
TreeCheckResult check_tree(const TreeInstance& inst);

/// A uniformly random in-tree shape on n nodes (each node's parent drawn
/// from its predecessors).
std::vector<std::size_t> random_tree_shape(std::size_t n,
                                           std::uint64_t seed);

}  // namespace ringstab
