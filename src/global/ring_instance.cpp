#include "global/ring_instance.hpp"

#include "core/fmt.hpp"

namespace ringstab {

RingInstance::RingInstance(Protocol protocol, std::size_t ring_size,
                           GlobalStateId max_states)
    : protocol_(std::move(protocol)),
      k_(ring_size),
      d_(protocol_.domain().size()) {
  if (k_ < 2) throw ModelError("ring size must be at least 2");
  GlobalStateId n = 1;
  pow_.reserve(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    pow_.push_back(n);
    if (n > max_states / d_)
      throw CapacityError(cat("|D|^K = ", d_, "^", k_, " exceeds the state budget ",
                              max_states));
    n *= d_;
  }
  num_states_ = n;
}

std::vector<Value> RingInstance::decode(GlobalStateId s) const {
  std::vector<Value> out(k_);
  for (std::size_t i = 0; i < k_; ++i) out[i] = value(s, i);
  return out;
}

GlobalStateId RingInstance::encode(std::span<const Value> ring) const {
  RINGSTAB_ASSERT(ring.size() == k_, "ring valuation has wrong size");
  GlobalStateId s = 0;
  for (std::size_t i = 0; i < k_; ++i) {
    RINGSTAB_ASSERT(ring[i] < d_, "value out of domain");
    s += pow_[i] * ring[i];
  }
  return s;
}

LocalStateId RingInstance::local_state(GlobalStateId s, std::size_t i) const {
  const auto& loc = protocol_.locality();
  LocalStateId ls = 0;
  LocalStateId mult = 1;
  for (int off = -loc.left; off <= loc.right; ++off) {
    const std::size_t j =
        (i + static_cast<std::size_t>(off + static_cast<int>(k_))) % k_;
    ls += static_cast<LocalStateId>(value(s, j)) * mult;
    mult *= static_cast<LocalStateId>(d_);
  }
  return ls;
}

bool RingInstance::in_invariant(GlobalStateId s) const {
  for (std::size_t i = 0; i < k_; ++i)
    if (!protocol_.is_legit(local_state(s, i))) return false;
  return true;
}

bool RingInstance::is_deadlock(GlobalStateId s) const {
  for (std::size_t i = 0; i < k_; ++i)
    if (process_enabled(s, i)) return false;
  return true;
}

void RingInstance::successors(GlobalStateId s, std::vector<Step>& out) const {
  out.clear();
  for (std::size_t i = 0; i < k_; ++i) {
    const LocalStateId ls = local_state(s, i);
    for (const auto& t : protocol_.transitions_from(ls)) {
      const Value old_self = protocol_.space().self(t.from);
      const Value new_self = protocol_.space().self(t.to);
      const GlobalStateId target =
          s + pow_[i] * new_self - pow_[i] * old_self;
      out.push_back({target, i, t});
    }
  }
}

std::size_t RingInstance::num_enabled(GlobalStateId s) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < k_; ++i)
    if (process_enabled(s, i)) ++n;
  return n;
}

std::string RingInstance::brief(GlobalStateId s) const {
  std::string out;
  out.reserve(k_);
  for (std::size_t i = 0; i < k_; ++i)
    out.push_back(protocol_.domain().abbrev(value(s, i)));
  return out;
}

Schedule schedule_from_path(const RingInstance& ring,
                            std::span<const GlobalStateId> path, bool cyclic) {
  Schedule sched;
  if (path.size() < 2 && !cyclic) return sched;
  const std::size_t steps = cyclic ? path.size() : path.size() - 1;
  std::vector<RingInstance::Step> succ;
  for (std::size_t n = 0; n < steps; ++n) {
    const GlobalStateId from = path[n];
    const GlobalStateId to = path[(n + 1) % path.size()];
    ring.successors(from, succ);
    bool found = false;
    for (const auto& st : succ) {
      if (st.target == to) {
        sched.push_back({st.process, st.transition});
        found = true;
        break;
      }
    }
    if (!found)
      throw ModelError(cat("path step ", n, " (", ring.brief(from), " → ",
                           ring.brief(to), ") is not a protocol transition"));
  }
  return sched;
}

}  // namespace ringstab
