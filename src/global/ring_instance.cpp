#include "global/ring_instance.hpp"

#include "core/fmt.hpp"

namespace ringstab {
namespace {

// Reused digit buffer for the single-state entry points, so callers that
// probe arbitrary states (tests, witnesses, the CLI) pay one decode and no
// allocation per call. Sweeps should use Cursor instead.
std::vector<Value>& scratch_digits() {
  static thread_local std::vector<Value> digits;
  return digits;
}

}  // namespace

RingInstance::RingInstance(Protocol protocol, std::size_t ring_size,
                           GlobalStateId max_states)
    : protocol_(std::move(protocol)),
      k_(ring_size),
      d_(protocol_.domain().size()),
      window_(static_cast<std::size_t>(protocol_.locality().window())) {
  if (k_ < 2) throw ModelError("ring size must be at least 2");
  GlobalStateId n = 1;
  pow_.reserve(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    pow_.push_back(n);
    if (n > max_states / d_)
      throw CapacityError(cat("|D|^K = ", d_, "^", k_, " exceeds the state budget ",
                              max_states));
    n *= d_;
  }
  num_states_ = n;

  lpow_.reserve(window_);
  LocalStateId lp = 1;
  for (std::size_t p = 0; p < window_; ++p) {
    lpow_.push_back(lp);
    lp *= static_cast<LocalStateId>(d_);
  }

  // widx_[i*window + p] = ring index of window offset (p - left) at
  // process i, with full wraparound (windows wider than the ring wrap more
  // than once).
  const auto& loc = protocol_.locality();
  widx_.resize(k_ * window_);
  for (std::size_t i = 0; i < k_; ++i) {
    for (std::size_t p = 0; p < window_; ++p) {
      const long long off = static_cast<long long>(p) - loc.left;
      long long j = (static_cast<long long>(i) + off) %
                    static_cast<long long>(k_);
      if (j < 0) j += static_cast<long long>(k_);
      widx_[i * window_ + p] = static_cast<std::uint32_t>(j);
    }
  }

  local_flags_.resize(protocol_.num_states());
  for (LocalStateId ls = 0; ls < local_flags_.size(); ++ls)
    local_flags_[ls] =
        static_cast<std::uint8_t>((protocol_.is_legit(ls) ? kLegit : 0) |
                                  (protocol_.is_enabled(ls) ? kEnabled : 0));
}

std::vector<Value> RingInstance::decode(GlobalStateId s) const {
  std::vector<Value> out;
  decode_into(s, out);
  return out;
}

void RingInstance::decode_into(GlobalStateId s,
                               std::vector<Value>& digits) const {
  digits.resize(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    digits[i] = static_cast<Value>(s % d_);
    s /= d_;
  }
}

GlobalStateId RingInstance::encode(std::span<const Value> ring) const {
  RINGSTAB_ASSERT(ring.size() == k_, "ring valuation has wrong size");
  GlobalStateId s = 0;
  for (std::size_t i = 0; i < k_; ++i) {
    RINGSTAB_ASSERT(ring[i] < d_, "value out of domain");
    s += pow_[i] * ring[i];
  }
  return s;
}

LocalStateId RingInstance::local_state(GlobalStateId s, std::size_t i) const {
  const std::uint32_t* idx = widx_.data() + i * window_;
  LocalStateId ls = 0;
  for (std::size_t p = 0; p < window_; ++p)
    ls += static_cast<LocalStateId>(value(s, idx[p])) * lpow_[p];
  return ls;
}

bool RingInstance::in_invariant(GlobalStateId s) const {
  auto& digits = scratch_digits();
  decode_into(s, digits);
  for (std::size_t i = 0; i < k_; ++i)
    if (!legit_local(local_state_from(digits.data(), i))) return false;
  return true;
}

bool RingInstance::is_deadlock(GlobalStateId s) const {
  auto& digits = scratch_digits();
  decode_into(s, digits);
  for (std::size_t i = 0; i < k_; ++i)
    if (enabled_local(local_state_from(digits.data(), i))) return false;
  return true;
}

void RingInstance::successors(GlobalStateId s, std::vector<Step>& out) const {
  auto& digits = scratch_digits();
  decode_into(s, digits);
  successors_from(s, digits.data(), out);
}

void RingInstance::successors_from(GlobalStateId s, const Value* digits,
                                   std::vector<Step>& out) const {
  out.clear();
  for (std::size_t i = 0; i < k_; ++i) {
    const LocalStateId ls = local_state_from(digits, i);
    if (!enabled_local(ls)) continue;
    for (const auto& t : protocol_.transitions_from(ls)) {
      const Value old_self = protocol_.space().self(t.from);
      const Value new_self = protocol_.space().self(t.to);
      const GlobalStateId target =
          s + pow_[i] * new_self - pow_[i] * old_self;
      out.push_back({target, i, t});
    }
  }
}

std::size_t RingInstance::num_enabled(GlobalStateId s) const {
  auto& digits = scratch_digits();
  decode_into(s, digits);
  std::size_t n = 0;
  for (std::size_t i = 0; i < k_; ++i)
    if (enabled_local(local_state_from(digits.data(), i))) ++n;
  return n;
}

std::string RingInstance::brief(GlobalStateId s) const {
  std::string out;
  out.reserve(k_);
  for (std::size_t i = 0; i < k_; ++i)
    out.push_back(protocol_.domain().abbrev(value(s, i)));
  return out;
}

Schedule schedule_from_path(const RingInstance& ring,
                            std::span<const GlobalStateId> path, bool cyclic) {
  Schedule sched;
  if (path.size() < 2 && !cyclic) return sched;
  const std::size_t steps = cyclic ? path.size() : path.size() - 1;
  sched.reserve(steps);
  const auto& space = ring.protocol().space();
  std::vector<Value> from_digits, to_digits;
  for (std::size_t n = 0; n < steps; ++n) {
    const GlobalStateId from = path[n];
    const GlobalStateId to = path[(n + 1) % path.size()];
    auto bad_step = [&] {
      return ModelError(cat("path step ", n, " (", ring.brief(from), " → ",
                            ring.brief(to), ") is not a protocol transition"));
    };
    // Interleaving semantics: exactly one process's variable changes, so the
    // mover is recoverable from the digit difference — no successor scan.
    ring.decode_into(from, from_digits);
    ring.decode_into(to, to_digits);
    std::size_t mover = ring.ring_size();
    for (std::size_t i = 0; i < ring.ring_size(); ++i) {
      if (from_digits[i] == to_digits[i]) continue;
      if (mover != ring.ring_size()) throw bad_step();  // two movers
      mover = i;
    }
    if (mover == ring.ring_size()) throw bad_step();  // stutter
    const LocalStateId ls = ring.local_state_from(from_digits.data(), mover);
    bool found = false;
    for (const auto& t : ring.protocol().transitions_from(ls)) {
      if (space.self(t.to) == to_digits[mover]) {
        sched.push_back({mover, t});
        found = true;
        break;
      }
    }
    if (!found) throw bad_step();
  }
  return sched;
}

}  // namespace ringstab
