#include "global/array_instance.hpp"

#include "core/fmt.hpp"
#include "graph/scc.hpp"

namespace ringstab {

ArrayInstance::ArrayInstance(Protocol protocol, std::size_t length,
                             GlobalStateId max_states)
    : protocol_(std::move(protocol)),
      n_(length),
      real_d_(protocol_.domain().size() - 1) {
  validate_array_protocol(protocol_);
  if (n_ < 2) throw ModelError("array length must be at least 2");
  GlobalStateId n = 1;
  pow_.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    pow_.push_back(n);
    if (n > max_states / real_d_)
      throw CapacityError(cat("(|D|-1)^n = ", real_d_, "^", n_,
                              " exceeds the state budget"));
    n *= real_d_;
  }
  num_states_ = n;
}

std::vector<Value> ArrayInstance::decode(GlobalStateId s) const {
  std::vector<Value> out(n_);
  for (std::size_t i = 0; i < n_; ++i) out[i] = value(s, i);
  return out;
}

GlobalStateId ArrayInstance::encode(std::span<const Value> values) const {
  RINGSTAB_ASSERT(values.size() == n_, "array valuation has wrong size");
  GlobalStateId s = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    RINGSTAB_ASSERT(values[i] < real_d_, "value out of the real domain");
    s += pow_[i] * values[i];
  }
  return s;
}

LocalStateId ArrayInstance::local_state(GlobalStateId s, std::size_t i) const {
  const auto& loc = protocol_.locality();
  const Value bot = boundary_value(protocol_);
  LocalStateId ls = 0;
  LocalStateId mult = 1;
  for (int off = -loc.left; off <= loc.right; ++off) {
    const long long j = static_cast<long long>(i) + off;
    const Value v = (j < 0 || j >= static_cast<long long>(n_))
                        ? bot
                        : value(s, static_cast<std::size_t>(j));
    ls += static_cast<LocalStateId>(v) * mult;
    mult *= static_cast<LocalStateId>(protocol_.domain().size());
  }
  return ls;
}

bool ArrayInstance::in_invariant(GlobalStateId s) const {
  for (std::size_t i = 0; i < n_; ++i)
    if (!protocol_.is_legit(local_state(s, i))) return false;
  return true;
}

bool ArrayInstance::is_deadlock(GlobalStateId s) const {
  for (std::size_t i = 0; i < n_; ++i)
    if (protocol_.is_enabled(local_state(s, i))) return false;
  return true;
}

void ArrayInstance::successors(GlobalStateId s, std::vector<Step>& out) const {
  out.clear();
  for (std::size_t i = 0; i < n_; ++i) {
    const LocalStateId ls = local_state(s, i);
    for (const auto& t : protocol_.transitions_from(ls)) {
      const Value old_self = protocol_.space().self(t.from);
      const Value new_self = protocol_.space().self(t.to);
      out.push_back({s + pow_[i] * new_self - pow_[i] * old_self, i, t});
    }
  }
}

std::string ArrayInstance::brief(GlobalStateId s) const {
  std::string out;
  for (std::size_t i = 0; i < n_; ++i)
    out.push_back(protocol_.domain().abbrev(value(s, i)));
  return out;
}

ArrayCheckResult check_array(const ArrayInstance& inst) {
  ArrayCheckResult res;
  const GlobalStateId n = inst.num_states();
  if (n > (GlobalStateId{1} << 22))
    throw CapacityError("array too large for explicit-digraph checking");

  Digraph g(static_cast<std::size_t>(n));
  std::vector<bool> outside(static_cast<std::size_t>(n), false);
  std::vector<ArrayInstance::Step> succ;
  for (GlobalStateId s = 0; s < n; ++s) {
    outside[static_cast<std::size_t>(s)] = !inst.in_invariant(s);
    inst.successors(s, succ);
    if (succ.empty() && outside[static_cast<std::size_t>(s)])
      ++res.num_deadlocks_outside_i;
    for (const auto& step : succ)
      g.add_arc(static_cast<VertexId>(s), static_cast<VertexId>(step.target));
  }
  // Livelock: a cycle entirely outside I.
  const Digraph restricted = g.induced(outside);
  res.has_livelock = any_marked_on_cycle(restricted, outside);
  // Termination: no cycle anywhere in the transition graph.
  std::vector<bool> all(static_cast<std::size_t>(n), true);
  res.terminates = !any_marked_on_cycle(g, all);
  return res;
}

}  // namespace ringstab
