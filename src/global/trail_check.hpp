// Realizing contiguous trails as concrete livelocks (the paper's
// sum-not-two reconstruction: "if we try to reconstruct the global livelock
// of a ring of three processes using T_R, we fail!").
#pragma once

#include <optional>
#include <vector>

#include "global/ring_instance.hpp"
#include "local/trail.hpp"

namespace ringstab {

/// What became of a trail when instantiated at its implied ring size K.
enum class TrailRealization {
  kRealized,        // the trail's start state lies on a real livelock at K
  kOtherLivelock,   // the start state does not, but p(K) livelocks elsewhere
  kSpurious,        // p(K) has no livelock at all: the trail is an artifact
                    // of the sufficient (not necessary) condition
  kNotInstantiable, // K is smaller than the window or the trail's windows
                    // are inconsistent around the ring
};

struct TrailRealizationResult {
  TrailRealization verdict = TrailRealization::kNotInstantiable;
  std::size_t ring_size = 0;
  /// The reconstructed round-start global state (when instantiable).
  std::optional<std::vector<Value>> start_state;
};

/// Instantiate the trail on a ring of K = |E| + P processes: the w1 segment
/// vertices give the local states of the |E| adjacent enabled processes and
/// the first round's w2 s-arc targets give the rest. Then decide whether
/// that state really lies on a livelock by exhaustive checking.
/// `num_threads` is forwarded to the global checker's sweep phases.
TrailRealizationResult realize_trail(const Protocol& p,
                                     const ContiguousTrail& trail,
                                     std::size_t num_threads = 1);

const char* to_string(TrailRealization r);

}  // namespace ringstab
