#include "global/tree_instance.hpp"

#include <random>

#include "core/fmt.hpp"
#include "graph/digraph.hpp"
#include "graph/scc.hpp"

namespace ringstab {

TreeInstance::TreeInstance(Protocol protocol,
                           std::vector<std::size_t> parent,
                           GlobalStateId max_states)
    : protocol_(std::move(protocol)),
      parent_(std::move(parent)),
      real_d_(protocol_.domain().size() - 1) {
  validate_array_protocol(protocol_);
  if (protocol_.locality() != Locality{1, 0})
    throw ModelError(
        "tree instances require a parent-read locality (reads -1 .. 0)");
  const std::size_t n = parent_.size() + 1;
  if (n < 2) throw ModelError("tree must have at least 2 nodes");
  for (std::size_t i = 1; i < n; ++i)
    if (parent_[i - 1] >= i)
      throw ModelError("tree parents must satisfy parent(i) < i");

  GlobalStateId count = 1;
  pow_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pow_.push_back(count);
    if (count > max_states / real_d_)
      throw CapacityError("tree state space exceeds the budget");
    count *= real_d_;
  }
  num_states_ = count;
}

std::vector<Value> TreeInstance::decode(GlobalStateId s) const {
  std::vector<Value> out(size());
  for (std::size_t i = 0; i < size(); ++i) out[i] = value(s, i);
  return out;
}

GlobalStateId TreeInstance::encode(std::span<const Value> values) const {
  RINGSTAB_ASSERT(values.size() == size(), "tree valuation has wrong size");
  GlobalStateId s = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    RINGSTAB_ASSERT(values[i] < real_d_, "value out of the real domain");
    s += pow_[i] * values[i];
  }
  return s;
}

LocalStateId TreeInstance::local_state(GlobalStateId s, std::size_t i) const {
  const Value prev =
      (i == 0) ? boundary_value(protocol_) : value(s, parent(i));
  const std::vector<Value> window{prev, value(s, i)};
  return protocol_.space().encode(window);
}

bool TreeInstance::in_invariant(GlobalStateId s) const {
  for (std::size_t i = 0; i < size(); ++i)
    if (!protocol_.is_legit(local_state(s, i))) return false;
  return true;
}

bool TreeInstance::is_deadlock(GlobalStateId s) const {
  for (std::size_t i = 0; i < size(); ++i)
    if (protocol_.is_enabled(local_state(s, i))) return false;
  return true;
}

void TreeInstance::successors(GlobalStateId s, std::vector<Step>& out) const {
  out.clear();
  for (std::size_t i = 0; i < size(); ++i) {
    const LocalStateId ls = local_state(s, i);
    for (const auto& t : protocol_.transitions_from(ls)) {
      const Value old_self = protocol_.space().self(t.from);
      const Value new_self = protocol_.space().self(t.to);
      out.push_back({s + pow_[i] * new_self - pow_[i] * old_self, i, t});
    }
  }
}

std::string TreeInstance::brief(GlobalStateId s) const {
  std::string out;
  for (std::size_t i = 0; i < size(); ++i)
    out.push_back(protocol_.domain().abbrev(value(s, i)));
  return out;
}

TreeCheckResult check_tree(const TreeInstance& inst) {
  TreeCheckResult res;
  const GlobalStateId n = inst.num_states();
  Digraph g(static_cast<std::size_t>(n));
  std::vector<bool> outside(static_cast<std::size_t>(n), false);
  std::vector<TreeInstance::Step> succ;
  for (GlobalStateId s = 0; s < n; ++s) {
    outside[static_cast<std::size_t>(s)] = !inst.in_invariant(s);
    inst.successors(s, succ);
    if (succ.empty() && outside[static_cast<std::size_t>(s)])
      ++res.num_deadlocks_outside_i;
    for (const auto& step : succ)
      g.add_arc(static_cast<VertexId>(s), static_cast<VertexId>(step.target));
  }
  const Digraph restricted = g.induced(outside);
  res.has_livelock = any_marked_on_cycle(restricted, outside);
  std::vector<bool> all(static_cast<std::size_t>(n), true);
  res.terminates = !any_marked_on_cycle(g, all);
  return res;
}

std::vector<std::size_t> random_tree_shape(std::size_t n,
                                           std::uint64_t seed) {
  RINGSTAB_ASSERT(n >= 2, "tree must have at least 2 nodes");
  std::mt19937_64 rng(seed);
  std::vector<std::size_t> parent(n - 1);
  for (std::size_t i = 1; i < n; ++i)
    parent[i - 1] = rng() % i;
  return parent;
}

}  // namespace ringstab
