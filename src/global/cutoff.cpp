#include "global/cutoff.hpp"

#include "core/fmt.hpp"

namespace ringstab {

CutoffReport verify_up_to_cutoff(const Protocol& p, std::size_t min_ring,
                                 std::size_t max_ring,
                                 GlobalStateId max_states) {
  CutoffReport report;
  for (std::size_t k = min_ring; k <= max_ring; ++k) {
    CutoffReport::Entry entry;
    entry.ring_size = k;
    try {
      const RingInstance ring(p, k, max_states);
      const GlobalChecker checker(ring);
      entry.num_states = ring.num_states();
      entry.deadlocks_outside_i = checker.count_deadlocks_outside_invariant();
      entry.has_livelock = checker.find_livelock().has_value();
      entry.stabilizes = entry.deadlocks_outside_i == 0 &&
                         !entry.has_livelock && checker.check_closure();
      report.states_explored += entry.num_states;
    } catch (const CapacityError&) {
      entry.stabilizes = false;  // unknown, reported as skipped
    }
    report.all_stabilize = report.all_stabilize &&
                           (entry.num_states == 0 || entry.stabilizes);
    report.entries.push_back(entry);
  }
  return report;
}

std::string CutoffReport::to_string(const Protocol& p) const {
  std::ostringstream os;
  os << "cutoff verification of " << p.name() << " ("
     << states_explored << " global states explored):\n";
  for (const auto& e : entries) {
    os << "  K=" << e.ring_size << ": ";
    if (e.num_states == 0) {
      os << "skipped (over state budget)\n";
      continue;
    }
    os << e.num_states << " states, "
       << (e.stabilizes ? "stabilizes" : "FAILS");
    if (!e.stabilizes)
      os << " (deadlocks=" << e.deadlocks_outside_i << ", livelock="
         << (e.has_livelock ? "yes" : "no") << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace ringstab
