// Explicit-state view of an array (open chain) protocol instance: the
// ground truth for the array extension of Theorem 4.2.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "local/array.hpp"

namespace ringstab {

/// An array of `n` processes running an array protocol (domain's last value
/// reserved as ⊥; see local/array.hpp). Global states range over the REAL
/// values only: |D−1|^n codes.
class ArrayInstance {
 public:
  ArrayInstance(Protocol protocol, std::size_t length,
                GlobalStateId max_states = GlobalStateId{1} << 24);

  const Protocol& protocol() const { return protocol_; }
  std::size_t length() const { return n_; }
  GlobalStateId num_states() const { return num_states_; }

  Value value(GlobalStateId s, std::size_t i) const {
    return static_cast<Value>((s / pow_[i]) % real_d_);
  }
  std::vector<Value> decode(GlobalStateId s) const;
  GlobalStateId encode(std::span<const Value> values) const;

  /// Local state of process i (window padded with ⊥ past the ends).
  LocalStateId local_state(GlobalStateId s, std::size_t i) const;

  bool in_invariant(GlobalStateId s) const;
  bool is_deadlock(GlobalStateId s) const;

  struct Step {
    GlobalStateId target = 0;
    std::size_t process = 0;
    LocalTransition transition;
  };
  void successors(GlobalStateId s, std::vector<Step>& out) const;

  std::string brief(GlobalStateId s) const;

 private:
  Protocol protocol_;
  std::size_t n_;
  std::size_t real_d_;  // |D| − 1 (⊥ excluded from real variables)
  GlobalStateId num_states_;
  std::vector<GlobalStateId> pow_;
};

/// Exhaustive checks for array instances (small state spaces: materialized
/// as an explicit digraph and analyzed with the graph toolkit).
struct ArrayCheckResult {
  std::size_t num_deadlocks_outside_i = 0;
  bool has_livelock = false;
  bool terminates = false;  // no infinite computation at all
};

ArrayCheckResult check_array(const ArrayInstance& inst);

}  // namespace ringstab
