// Cutoff-style verification (the related-work approach of Emerson et al.,
// paper Section 7): certify p(K) for every K up to a bound by exhaustive
// checking — the baseline the local method renders unnecessary for rings.
#pragma once

#include <string>
#include <vector>

#include "global/checker.hpp"

namespace ringstab {

struct CutoffReport {
  struct Entry {
    std::size_t ring_size = 0;
    GlobalStateId num_states = 0;
    bool stabilizes = false;
    std::size_t deadlocks_outside_i = 0;
    bool has_livelock = false;
  };
  std::vector<Entry> entries;
  /// True iff every checked size stabilizes.
  bool all_stabilize = true;
  /// Total states across all instances (the cost of this approach).
  GlobalStateId states_explored = 0;

  std::string to_string(const Protocol& p) const;
};

/// Check p(K) for K in [min_ring, max_ring]. Sizes whose state space
/// exceeds `max_states` are skipped (reported with num_states = 0).
CutoffReport verify_up_to_cutoff(const Protocol& p, std::size_t min_ring,
                                 std::size_t max_ring,
                                 GlobalStateId max_states = GlobalStateId{1}
                                                            << 24);

}  // namespace ringstab
