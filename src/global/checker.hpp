// Explicit-state verification of concrete ring instances (the global
// baseline the paper contrasts with local reasoning).
#pragma once

#include <optional>
#include <vector>

#include "global/ring_instance.hpp"
#include "parallel/bitset.hpp"

namespace ringstab {

/// Results of checking one instance p(K) exhaustively.
struct GlobalCheckResult {
  std::size_t ring_size = 0;
  GlobalStateId num_states = 0;

  std::size_t num_deadlocks_outside_i = 0;
  std::vector<GlobalStateId> deadlock_samples;  // capped

  bool has_livelock = false;
  /// Witness cycle of global states, all outside I (empty if none).
  std::vector<GlobalStateId> livelock_cycle;

  bool closure_ok = true;
  std::optional<std::pair<GlobalStateId, GlobalStateId>> closure_violation;

  /// Every state can reach I (weak convergence).
  bool weakly_converges = false;

  /// Strong convergence to I = closure + no deadlock outside I + no cycle
  /// outside I (Proposition 2.1).
  bool strongly_converges() const {
    return closure_ok && num_deadlocks_outside_i == 0 && !has_livelock;
  }

  /// Worst-case number of steps to reach I over all states and all
  /// schedules; meaningful only when strongly_converges() (else 0).
  std::size_t max_recovery_steps = 0;
};

/// Exhaustive checker over |D|^K global states. `num_threads > 1` runs the
/// full-space sweeps (invariant mask, deadlock census, closure, weak
/// convergence, recovery layering) as chunked parallel scans on the shared
/// pool; all verdicts, counts, samples, and step bounds are identical to
/// the serial engine for every thread count — per-chunk partial results are
/// merged in ascending chunk order over a thread-count-independent chunk
/// partition. The Tarjan livelock search stays serial but reads the
/// precomputed invariant mask, which is built once per checker and shared
/// by every phase.
class GlobalChecker {
 public:
  explicit GlobalChecker(const RingInstance& ring, std::size_t num_threads = 1)
      : ring_(&ring), num_threads_(num_threads == 0 ? 1 : num_threads) {}

  std::size_t num_threads() const { return num_threads_; }

  /// The packed I(K) membership mask, built (in parallel) on first use and
  /// cached for the checker's lifetime.
  const PackedBitset& invariant_mask() const;

  /// Count (and sample up to `max_samples`) global deadlocks outside I.
  std::size_t count_deadlocks_outside_invariant(
      std::vector<GlobalStateId>* samples = nullptr,
      std::size_t max_samples = 8) const;

  /// Find a cycle of global states entirely outside I (a livelock witness),
  /// via iterative Tarjan on the ¬I-restricted transition graph.
  std::optional<std::vector<GlobalStateId>> find_livelock() const;

  /// All states lying on some cycle outside I (the union of nontrivial
  /// ¬I SCCs).
  std::vector<GlobalStateId> livelock_states() const;

  /// Closure of I (Section 2.3): no transition leaves I.
  bool check_closure(
      std::optional<std::pair<GlobalStateId, GlobalStateId>>* violation =
          nullptr) const;

  /// Every global state can reach I (weak convergence), by backward
  /// fixpoint.
  bool check_weak_convergence() const;

  /// Longest path to I in the (acyclic, deadlock-free) ¬I subgraph.
  /// Throws ModelError if called on a non-strongly-converging instance.
  std::size_t max_recovery_steps() const;

  /// Everything at once.
  GlobalCheckResult check_all() const;

 private:
  const RingInstance* ring_;
  std::size_t num_threads_;
  mutable PackedBitset inv_mask_;  // empty until first use
};

/// Convenience: does p(K) strongly self-stabilize to I(K)?
bool strongly_stabilizing(const RingInstance& ring,
                          std::size_t num_threads = 1);

}  // namespace ringstab
