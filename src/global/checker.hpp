// Explicit-state verification of concrete ring instances (the global
// baseline the paper contrasts with local reasoning).
#pragma once

#include <optional>
#include <vector>

#include "global/ring_instance.hpp"
#include "graph/parallel_scc.hpp"
#include "parallel/bitset.hpp"

namespace ringstab {

/// Results of checking one instance p(K) exhaustively.
struct GlobalCheckResult {
  std::size_t ring_size = 0;
  GlobalStateId num_states = 0;

  std::size_t num_deadlocks_outside_i = 0;
  std::vector<GlobalStateId> deadlock_samples;  // capped

  bool has_livelock = false;
  /// Witness cycle of global states, all outside I (empty if none).
  std::vector<GlobalStateId> livelock_cycle;

  bool closure_ok = true;
  std::optional<std::pair<GlobalStateId, GlobalStateId>> closure_violation;

  /// Every global state can reach I (weak convergence).
  bool weakly_converges = false;

  /// Strong convergence to I = closure + no deadlock outside I + no cycle
  /// outside I (Proposition 2.1).
  bool strongly_converges() const {
    return closure_ok && num_deadlocks_outside_i == 0 && !has_livelock;
  }

  /// Worst-case number of steps to reach I over all states and all
  /// schedules; meaningful only when strongly_converges() (else 0).
  std::size_t max_recovery_steps = 0;
};

/// Exhaustive checker over |D|^K global states.
///
/// Two engines share this interface:
///
///  * The **fused** engine (default) decodes the state space exactly twice
///    per full verdict. Pass 1 classifies every state (invariant membership
///    + deadlock census) in one cursor sweep. Pass 2 walks successors once,
///    checking closure for I-states and materializing the ¬I transition
///    graph as a compact CSR over ¬I *ranks* (popcount-indexed into the
///    invariant mask). Everything downstream — livelock SCCs (FB/FWBW
///    parallel SCC, graph/parallel_scc.hpp), the weak-convergence backward
///    fixpoint, and the recovery layering — then runs on the CSR with no
///    further decoding, sweeping the packed bitsets in 64-byte tiles that
///    skip fully-settled words.
///
///  * The **unfused** engine (`fused = false`) is the original pass-per-
///    question layout: independent sweeps per predicate and a serial
///    iterative Tarjan over the implicit graph for livelocks (run once and
///    cached, serving both find_livelock() and livelock_states()). It is
///    kept as the cross-validation baseline for tests and benchmarks.
///
/// Both engines produce identical verdicts, counts, samples, and step
/// bounds at every thread count: per-chunk partial results are merged in
/// ascending chunk order over a thread-count-independent chunk partition,
/// and the SCC labeling is canonical (smallest member). Witness *cycles*
/// are deterministic per engine (and valid in both), but the two engines
/// may select different cycles through the same livelocked components.
///
/// `num_threads > 1` runs the sweeps as chunked scans on the shared pool.
/// A checker instance caches its sweeps and is not safe for concurrent use.
class GlobalChecker {
 public:
  explicit GlobalChecker(const RingInstance& ring, std::size_t num_threads = 1,
                         bool fused = true)
      : ring_(&ring),
        num_threads_(num_threads == 0 ? 1 : num_threads),
        fused_(fused) {}

  std::size_t num_threads() const { return num_threads_; }
  bool fused() const { return fused_; }

  /// The packed I(K) membership mask, built (in parallel) on first use and
  /// cached for the checker's lifetime.
  const PackedBitset& invariant_mask() const;

  /// Count (and sample up to `max_samples`) global deadlocks outside I.
  std::size_t count_deadlocks_outside_invariant(
      std::vector<GlobalStateId>* samples = nullptr,
      std::size_t max_samples = 8) const;

  /// Find a cycle of global states entirely outside I (a livelock witness).
  std::optional<std::vector<GlobalStateId>> find_livelock() const;

  /// All states lying on some cycle outside I (the union of nontrivial
  /// ¬I SCCs), ascending.
  std::vector<GlobalStateId> livelock_states() const;

  /// Closure of I (Section 2.3): no transition leaves I.
  bool check_closure(
      std::optional<std::pair<GlobalStateId, GlobalStateId>>* violation =
          nullptr) const;

  /// Every global state can reach I (weak convergence), by backward
  /// fixpoint.
  bool check_weak_convergence() const;

  /// Longest path to I in the (acyclic, deadlock-free) ¬I subgraph.
  /// Throws ModelError if called on a non-strongly-converging instance.
  std::size_t max_recovery_steps() const;

  /// Everything at once.
  GlobalCheckResult check_all() const;

 private:
  static constexpr std::size_t kMaxCachedSamples = 8;

  // Fused pipeline stages, each cached after the first call.
  void ensure_masks() const;  // pass 1: invariant mask + deadlock census
  void ensure_graph() const;  // pass 2: closure + ¬I CSR + rank tables
  void ensure_scc() const;    // FB/FWBW SCC over the cached CSR
  std::uint32_t rank_of(GlobalStateId s) const;

  // Unfused: one full Tarjan serves both livelock queries.
  void ensure_tarjan() const;

  std::size_t fused_weak_convergence() const;  // returns |reachers| in ¬I
  std::size_t fused_recovery_steps() const;

  const RingInstance* ring_;
  std::size_t num_threads_;
  bool fused_;

  mutable PackedBitset inv_mask_;  // empty until first use

  // Fused pass 1 products.
  mutable bool census_done_ = false;
  mutable std::size_t deadlock_count_ = 0;
  mutable std::vector<GlobalStateId> deadlock_samples_;  // first 8, ascending

  // Fused pass 2 products. The CSR is over ¬I ranks: state s outside I has
  // rank = #{t < s : t outside I}; word_rank_ holds the per-word prefix so
  // rank_of() is one popcount. Edges into I are dropped from the CSR and
  // recorded in to_inv_ instead.
  mutable bool graph_built_ = false;
  mutable CsrGraph csr_;
  mutable PackedBitset to_inv_;
  mutable std::vector<std::uint64_t> word_rank_;
  mutable std::vector<GlobalStateId> ni_ids_;  // rank -> global state id
  mutable bool closure_ok_ = true;
  mutable std::optional<std::pair<GlobalStateId, GlobalStateId>>
      closure_violation_;

  mutable bool scc_done_ = false;
  mutable ParallelSccResult scc_;

  // Unfused Tarjan cache.
  mutable bool tarjan_done_ = false;
  mutable std::optional<std::vector<GlobalStateId>> tarjan_witness_;
  mutable std::vector<GlobalStateId> tarjan_states_;  // ascending
};

/// Convenience: does p(K) strongly self-stabilize to I(K)?
bool strongly_stabilizing(const RingInstance& ring,
                          std::size_t num_threads = 1);

}  // namespace ringstab
