// Rotation-symmetry reduction for ring model checking.
//
// Symmetric protocols are invariant under ring rotation, so the global
// state space factors into rotation orbits (necklaces). Checking one
// canonical representative per orbit is sound and complete for the
// properties ringstab cares about:
//
//  * deadlock / membership in I are rotation-invariant state predicates, so
//    orbit-size weighting recovers the plain checker's exact counts;
//  * closure and reachability-of-I are rotation-invariant, so the quotient
//    fixpoints decide them;
//  * a livelock exists iff the quotient transition graph restricted to ¬I
//    has a cycle (possibly a self-loop): a real cycle projects to a
//    quotient cycle, and a quotient cycle lifts — following it returns to a
//    rotation ρ of the start, and iterating ord(ρ) times closes a genuine
//    cycle, which check_symmetric materializes as its witness.
//
// The quotient is enumerated by the FKM necklace recursion (necklace.hpp):
// each orbit representative is produced directly, in ascending canonical-id
// order, in amortized O(1) — never scanning the |D|^K full space. This
// replaced the seed's scan-and-filter canonicalization, whose O(K²)
// per-state cost ate the ~K× orbit savings in wall time; the enumerated
// quotient pays in wall time as well as state count (measured in
// EXP-S1c / BENCH_symmetry.json: the quotient census beats the full-space
// sweep from K≈10 upward and the gap widens with K).
#pragma once

#include <optional>
#include <vector>

#include "global/checker.hpp"

namespace ringstab {

/// The canonical representative of s's rotation orbit: the minimal encoding
/// over all K rotations (O(K) via Duval least-rotation).
GlobalStateId canonical_rotation(const RingInstance& ring, GlobalStateId s);

/// Number of distinct states in s's rotation orbit (== the primitive period
/// of the cyclic word; always divides K).
std::size_t rotation_orbit_size(const RingInstance& ring, GlobalStateId s);

/// Deadlock census over the necklace quotient, without building the
/// quotient transition graph — the cheapest symmetry-reduced sweep, and the
/// one BENCH_symmetry.json races against the full-space engine.
struct NecklaceCensus {
  /// Quotient size: rotation orbits of |D|^K states.
  std::size_t num_necklaces = 0;
  /// Σ orbit sizes over all necklaces; always equals |D|^K.
  std::uint64_t orbit_states = 0;
  /// Orbit-weighted deadlock count: equals the plain checker's exactly.
  std::size_t num_deadlocks_outside_i = 0;
  /// Canonical deadlock representatives in ascending id order (capped).
  std::vector<GlobalStateId> deadlock_orbit_reps;
};

/// `num_threads > 1` partitions the necklace prefix space over the shared
/// pool; per-chunk partials merge in ascending slot order, so counts and
/// representatives are identical to the serial enumeration for every
/// thread count.
NecklaceCensus necklace_census(const RingInstance& ring,
                               std::size_t max_samples = 8,
                               std::size_t num_threads = 1);

/// Full verdict set over the rotation quotient; every verdict and count is
/// identical to GlobalChecker's on the same instance (tests cross-validate
/// the zoo at K=2..10).
struct SymmetricCheckResult {
  std::size_t ring_size = 0;
  GlobalStateId num_states = 0;  // |D|^K, the space never materialized
  std::size_t num_necklaces = 0;

  /// Orbit-aware deadlock count: equals the plain checker's count exactly.
  std::size_t num_deadlocks_outside_i = 0;
  /// Canonical deadlock representatives (capped).
  std::vector<GlobalStateId> deadlock_orbit_reps;

  bool has_livelock = false;
  /// Genuine full-space witness cycle (all states outside I), lifted from
  /// the quotient cycle by iterating its closing rotation; empty if none.
  std::vector<GlobalStateId> livelock_cycle;

  bool closure_ok = true;
  /// An actual transition leaving I: canonical source, raw successor.
  std::optional<std::pair<GlobalStateId, GlobalStateId>> closure_violation;

  /// Every state can reach I (weak convergence), by quotient fixpoint.
  bool weakly_converges = false;

  /// Worst-case steps to reach I; computed (on the quotient) only when
  /// strongly_converges(), else 0. Recovery depth is rotation-invariant, so
  /// this equals GlobalChecker::max_recovery_steps().
  std::size_t max_recovery_steps = 0;

  /// Canonical states actually visited (== num_necklaces; the cost —
  /// compare |D|^K).
  std::size_t canonical_states_visited = 0;

  bool strongly_converges() const {
    return closure_ok && num_deadlocks_outside_i == 0 && !has_livelock;
  }
};

/// `num_threads > 1` parallelizes the necklace enumeration, quotient-graph
/// build, closure scan, weak-convergence fixpoint, and the FB/FWBW livelock
/// SCC pass on the shared pool; all results — including the lifted livelock
/// witness, which is anchored canonically — stay identical to the serial
/// run at every thread count.
SymmetricCheckResult check_symmetric(const RingInstance& ring,
                                     std::size_t max_samples = 8,
                                     std::size_t num_threads = 1);

}  // namespace ringstab
