// Rotation-symmetry reduction for ring model checking.
//
// Symmetric protocols are invariant under ring rotation, so the global
// state space factors into rotation orbits (necklaces). Checking one
// canonical representative per orbit is sound and complete for the
// properties ringstab cares about:
//
//  * deadlock / membership in I are rotation-invariant state predicates;
//  * a livelock exists iff the quotient transition graph restricted to ¬I
//    has a cycle: a real cycle projects to a quotient cycle, and a quotient
//    cycle lifts — following it returns to a rotation ρ of the start, and
//    iterating ord(ρ) times closes a genuine cycle.
//
// This cuts the visited state count by ~K× (necklace counting). Measured
// caveat (bench_scale_local_vs_global): with scan-and-filter representative
// enumeration, the O(K²) canonicalization per state outweighs the savings
// in wall time — the reduction pays in memory/state count, and would need a
// dedicated necklace enumerator to pay in time. Either way the local method
// beats the global baseline exponentially.
#pragma once

#include "global/checker.hpp"

namespace ringstab {

/// The canonical representative of s's rotation orbit: the minimal encoding
/// over all K rotations.
GlobalStateId canonical_rotation(const RingInstance& ring, GlobalStateId s);

/// Number of distinct states in s's rotation orbit (K / period).
std::size_t rotation_orbit_size(const RingInstance& ring, GlobalStateId s);

struct SymmetricCheckResult {
  /// Orbit-aware deadlock count: equals the plain checker's count exactly.
  std::size_t num_deadlocks_outside_i = 0;
  /// Canonical deadlock representatives (capped).
  std::vector<GlobalStateId> deadlock_orbit_reps;
  bool has_livelock = false;
  /// Canonical states actually visited (the cost; compare |D|^K).
  std::size_t canonical_states_visited = 0;
};

/// `num_threads > 1` parallelizes the orbit-aware deadlock census on the
/// shared pool (counts and representatives stay identical to the serial
/// scan); the quotient-graph Tarjan pass stays serial.
SymmetricCheckResult check_symmetric(const RingInstance& ring,
                                     std::size_t max_samples = 8,
                                     std::size_t num_threads = 1);

}  // namespace ringstab
