#include "global/symmetry.hpp"

#include <algorithm>
#include <unordered_map>

#include "parallel/thread_pool.hpp"

namespace ringstab {
namespace {

// Encode the ring valuation rotated left by r positions, straight off the
// digit vector — no intermediate rotated copy.
GlobalStateId rotate_encode(const RingInstance& ring,
                            const std::vector<Value>& digits, std::size_t r) {
  const std::size_t k = digits.size();
  const auto& pow = ring.powers();
  GlobalStateId s = 0;
  for (std::size_t i = 0; i < k; ++i) s += pow[i] * digits[(i + r) % k];
  return s;
}

GlobalStateId canonical_from_digits(const RingInstance& ring,
                                    const std::vector<Value>& digits,
                                    GlobalStateId s) {
  GlobalStateId best = s;
  for (std::size_t r = 1; r < ring.ring_size(); ++r)
    best = std::min(best, rotate_encode(ring, digits, r));
  return best;
}

std::size_t orbit_size_from_digits(const RingInstance& ring,
                                   const std::vector<Value>& digits,
                                   GlobalStateId s) {
  // Orbit size = K / (smallest rotation period).
  for (std::size_t r = 1; r < ring.ring_size(); ++r) {
    if (ring.ring_size() % r != 0) continue;
    if (rotate_encode(ring, digits, r) == s) return r;
  }
  return ring.ring_size();
}

}  // namespace

GlobalStateId canonical_rotation(const RingInstance& ring, GlobalStateId s) {
  return canonical_from_digits(ring, ring.decode(s), s);
}

std::size_t rotation_orbit_size(const RingInstance& ring, GlobalStateId s) {
  return orbit_size_from_digits(ring, ring.decode(s), s);
}

SymmetricCheckResult check_symmetric(const RingInstance& ring,
                                     std::size_t max_samples,
                                     std::size_t num_threads) {
  SymmetricCheckResult res;

  // Pass 1: orbit-aware deadlock census over canonical representatives.
  // Chunked sweep with per-chunk partials merged in ascending chunk order,
  // so counts and representatives match the serial scan for any thread
  // count.
  {
    const GlobalStateId n = ring.num_states();
    const std::uint64_t chunks = num_chunks(n, 0);
    struct ChunkTally {
      std::size_t visited = 0;
      std::size_t deadlocks = 0;
      std::vector<GlobalStateId> reps;
    };
    std::vector<ChunkTally> tally(chunks);
    parallel_for(n, num_threads, 0,
                 [&](const ChunkRange& chunk, std::size_t) {
      auto cur = ring.cursor(chunk.begin);
      ChunkTally& t = tally[chunk.index];
      for (GlobalStateId s = chunk.begin; s < chunk.end; ++s, cur.advance()) {
        if (canonical_from_digits(ring, cur.digits(), s) != s)
          continue;  // not a representative
        ++t.visited;
        if (cur.in_invariant() || !cur.is_deadlock()) continue;
        t.deadlocks += orbit_size_from_digits(ring, cur.digits(), s);
        if (t.reps.size() < max_samples) t.reps.push_back(s);
      }
    });
    for (const ChunkTally& t : tally) {
      res.canonical_states_visited += t.visited;
      res.num_deadlocks_outside_i += t.deadlocks;
      for (GlobalStateId s : t.reps)
        if (res.deadlock_orbit_reps.size() < max_samples)
          res.deadlock_orbit_reps.push_back(s);
    }
  }

  // Pass 2: livelock via iterative Tarjan on the ¬I quotient graph
  // (vertices = canonical representatives; arcs = canonicalized successors;
  // a quotient self-loop IS a cycle — it lifts by iterating the rotation).
  constexpr std::uint32_t kUnvisited = 0xffffffffu;
  std::unordered_map<GlobalStateId, std::uint32_t> index, low;
  std::unordered_map<GlobalStateId, bool> on_stack;
  std::vector<GlobalStateId> stack;
  std::uint32_t next_index = 0;

  std::vector<RingInstance::Step> succ;
  auto expand = [&](GlobalStateId v, std::vector<GlobalStateId>& out,
                    bool& self_loop) {
    out.clear();
    self_loop = false;
    ring.successors(v, succ);
    for (const auto& step : succ) {
      if (ring.in_invariant(step.target)) continue;
      const GlobalStateId c = canonical_rotation(ring, step.target);
      if (c == v) self_loop = true;
      out.push_back(c);
    }
  };

  struct Frame {
    GlobalStateId v;
    std::vector<GlobalStateId> children;
    std::size_t next_child = 0;
  };

  auto get = [](auto& map, GlobalStateId key, auto fallback) {
    auto it = map.find(key);
    return it == map.end() ? fallback : it->second;
  };

  for (GlobalStateId root = 0;
       root < ring.num_states() && !res.has_livelock; ++root) {
    if (ring.in_invariant(root)) continue;
    if (canonical_rotation(ring, root) != root) continue;
    if (get(index, root, kUnvisited) != kUnvisited) continue;

    std::vector<Frame> call;
    bool self_loop = false;
    call.push_back({root, {}, 0});
    expand(root, call.back().children, self_loop);
    if (self_loop) {
      res.has_livelock = true;
      break;
    }
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!call.empty() && !res.has_livelock) {
      Frame& f = call.back();
      const GlobalStateId v = f.v;
      bool descended = false;
      while (f.next_child < f.children.size()) {
        const GlobalStateId w = f.children[f.next_child++];
        if (get(index, w, kUnvisited) == kUnvisited) {
          call.push_back({w, {}, 0});
          expand(w, call.back().children, self_loop);
          if (self_loop) {
            res.has_livelock = true;
            break;
          }
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          descended = true;
          break;
        }
        if (get(on_stack, w, false))
          low[v] = std::min(low[v], index[w]);
      }
      if (res.has_livelock || descended) continue;

      if (low[v] == index[v]) {
        std::size_t comp_size = 0;
        while (true) {
          const GlobalStateId w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          ++comp_size;
          if (w == v) break;
        }
        if (comp_size > 1) res.has_livelock = true;
      }
      call.pop_back();
      if (!call.empty())
        low[call.back().v] = std::min(low[call.back().v], low[v]);
    }
  }
  return res;
}

}  // namespace ringstab
