#include "global/symmetry.hpp"

#include <algorithm>
#include <unordered_map>

namespace ringstab {
namespace {

// Rotate the ring valuation left by r positions and encode.
GlobalStateId rotate_encode(const RingInstance& ring,
                            const std::vector<Value>& vals, std::size_t r) {
  const std::size_t k = vals.size();
  std::vector<Value> rot(k);
  for (std::size_t i = 0; i < k; ++i) rot[i] = vals[(i + r) % k];
  return ring.encode(rot);
}

}  // namespace

GlobalStateId canonical_rotation(const RingInstance& ring, GlobalStateId s) {
  const auto vals = ring.decode(s);
  GlobalStateId best = s;
  for (std::size_t r = 1; r < ring.ring_size(); ++r)
    best = std::min(best, rotate_encode(ring, vals, r));
  return best;
}

std::size_t rotation_orbit_size(const RingInstance& ring, GlobalStateId s) {
  const auto vals = ring.decode(s);
  // Orbit size = K / (smallest rotation period).
  for (std::size_t r = 1; r < ring.ring_size(); ++r) {
    if (ring.ring_size() % r != 0) continue;
    if (rotate_encode(ring, vals, r) == s) return r;
  }
  return ring.ring_size();
}

SymmetricCheckResult check_symmetric(const RingInstance& ring,
                                     std::size_t max_samples) {
  SymmetricCheckResult res;

  // Pass 1: orbit-aware deadlock census over canonical representatives.
  for (GlobalStateId s = 0; s < ring.num_states(); ++s) {
    if (canonical_rotation(ring, s) != s) continue;  // not a representative
    ++res.canonical_states_visited;
    if (ring.in_invariant(s) || !ring.is_deadlock(s)) continue;
    res.num_deadlocks_outside_i += rotation_orbit_size(ring, s);
    if (res.deadlock_orbit_reps.size() < max_samples)
      res.deadlock_orbit_reps.push_back(s);
  }

  // Pass 2: livelock via iterative Tarjan on the ¬I quotient graph
  // (vertices = canonical representatives; arcs = canonicalized successors;
  // a quotient self-loop IS a cycle — it lifts by iterating the rotation).
  constexpr std::uint32_t kUnvisited = 0xffffffffu;
  std::unordered_map<GlobalStateId, std::uint32_t> index, low;
  std::unordered_map<GlobalStateId, bool> on_stack;
  std::vector<GlobalStateId> stack;
  std::uint32_t next_index = 0;

  std::vector<RingInstance::Step> succ;
  auto expand = [&](GlobalStateId v, std::vector<GlobalStateId>& out,
                    bool& self_loop) {
    out.clear();
    self_loop = false;
    ring.successors(v, succ);
    for (const auto& step : succ) {
      if (ring.in_invariant(step.target)) continue;
      const GlobalStateId c = canonical_rotation(ring, step.target);
      if (c == v) self_loop = true;
      out.push_back(c);
    }
  };

  struct Frame {
    GlobalStateId v;
    std::vector<GlobalStateId> children;
    std::size_t next_child = 0;
  };

  auto get = [](auto& map, GlobalStateId key, auto fallback) {
    auto it = map.find(key);
    return it == map.end() ? fallback : it->second;
  };

  for (GlobalStateId root = 0;
       root < ring.num_states() && !res.has_livelock; ++root) {
    if (ring.in_invariant(root)) continue;
    if (canonical_rotation(ring, root) != root) continue;
    if (get(index, root, kUnvisited) != kUnvisited) continue;

    std::vector<Frame> call;
    bool self_loop = false;
    call.push_back({root, {}, 0});
    expand(root, call.back().children, self_loop);
    if (self_loop) {
      res.has_livelock = true;
      break;
    }
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!call.empty() && !res.has_livelock) {
      Frame& f = call.back();
      const GlobalStateId v = f.v;
      bool descended = false;
      while (f.next_child < f.children.size()) {
        const GlobalStateId w = f.children[f.next_child++];
        if (get(index, w, kUnvisited) == kUnvisited) {
          call.push_back({w, {}, 0});
          expand(w, call.back().children, self_loop);
          if (self_loop) {
            res.has_livelock = true;
            break;
          }
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          descended = true;
          break;
        }
        if (get(on_stack, w, false))
          low[v] = std::min(low[v], index[w]);
      }
      if (res.has_livelock || descended) continue;

      if (low[v] == index[v]) {
        std::size_t comp_size = 0;
        while (true) {
          const GlobalStateId w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          ++comp_size;
          if (w == v) break;
        }
        if (comp_size > 1) res.has_livelock = true;
      }
      call.pop_back();
      if (!call.empty())
        low[call.back().v] = std::min(low[call.back().v], low[v]);
    }
  }
  return res;
}

}  // namespace ringstab
