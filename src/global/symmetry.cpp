#include "global/symmetry.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/fmt.hpp"
#include "global/necklace.hpp"
#include "graph/parallel_scc.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace ringstab {
namespace {

constexpr std::uint8_t kInInv = 1;
constexpr std::uint8_t kDeadlock = 2;
constexpr std::uint32_t kUnvisited = 0xffffffffu;

/// Dense view of the rotation quotient: necklaces in ascending canonical-id
/// order plus their CSR transition graph (targets canonicalized to ranks,
/// deduplicated and sorted per source).
struct Quotient {
  std::vector<GlobalStateId> ids;
  std::vector<std::uint32_t> orbit;
  std::vector<std::uint8_t> flags;  // kInInv | kDeadlock per rank
  std::vector<std::uint64_t> row;   // CSR offsets, size ids.size() + 1
  std::vector<std::uint32_t> col;   // CSR targets (ranks)

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(ids.size());
  }
  bool in_inv(std::uint32_t r) const { return flags[r] & kInInv; }
};

/// Chunk grain over the necklace prefix-slot space: a pure function of the
/// slot count so the chunk partition — and therefore any ascending-order
/// merge — is identical for every thread count.
std::uint64_t slot_grain(std::uint64_t slots) {
  return std::max<std::uint64_t>(1, slots / 1024);
}

struct CensusBuild {
  NecklaceCensus census;
  // Filled only when `collect`:
  std::vector<GlobalStateId> ids;
  std::vector<std::uint32_t> orbit;
  std::vector<std::uint8_t> flags;
};

/// One pass of the parallel FKM enumeration: orbit-weighted deadlock census
/// and (optionally) the dense necklace arrays, merged in ascending slot
/// order.
CensusBuild run_census(const RingInstance& ring, std::size_t max_samples,
                       std::size_t num_threads, bool collect) {
  const obs::Span span("symmetry.necklace_census");
  const NecklaceEnumerator enumerator(ring.ring_size(), ring.domain_size());
  const std::uint64_t slots = enumerator.num_slots();
  const std::uint64_t grain = slot_grain(slots);
  const std::uint64_t chunks = num_chunks(slots, grain);
  const std::size_t k = ring.ring_size();

  struct Chunk {
    std::uint64_t necklaces = 0;
    std::uint64_t orbit_states = 0;
    std::uint64_t deadlocks = 0;
    std::vector<GlobalStateId> reps;
    std::vector<GlobalStateId> ids;
    std::vector<std::uint32_t> orbit;
    std::vector<std::uint8_t> flags;
  };
  std::vector<Chunk> tally(chunks);

  // Per-FKM-block census latency: the necklace enumerator's blocks are
  // uneven (prefix-dependent), so this distribution is the evidence for
  // the block-size heuristic in slot_grain().
  obs::Histogram* block_ns =
      obs::enabled() ? &obs::histogram("symmetry.block_ns") : nullptr;
  parallel_for(slots, num_threads, grain,
               [&](const ChunkRange& chunk, std::size_t) {
    const obs::Ticks t0 = block_ns != nullptr ? obs::now() : 0;
    Chunk& t = tally[chunk.index];
    enumerator.visit_slots(chunk.begin, chunk.end,
                           [&](const Value* digits, GlobalStateId id,
                               std::uint32_t orbit) {
      // Fused rotation-invariant predicates off the canonical digits: stop
      // as soon as both are decided.
      bool in_inv = true, dead = true;
      for (std::size_t i = 0; i < k; ++i) {
        const LocalStateId ls = ring.local_state_from(digits, i);
        if (!ring.legit_local(ls)) in_inv = false;
        if (ring.enabled_local(ls)) dead = false;
        if (!in_inv && !dead) break;
      }
      ++t.necklaces;
      t.orbit_states += orbit;
      if (!in_inv && dead) {
        t.deadlocks += orbit;
        if (t.reps.size() < max_samples) t.reps.push_back(id);
      }
      if (collect) {
        t.ids.push_back(id);
        t.orbit.push_back(orbit);
        t.flags.push_back(static_cast<std::uint8_t>((in_inv ? kInInv : 0) |
                                                    (dead ? kDeadlock : 0)));
      }
    });
    if (block_ns != nullptr) block_ns->record(obs::now() - t0);
  });

  CensusBuild out;
  std::uint64_t total = 0;
  for (const Chunk& t : tally) total += t.necklaces;
  if (collect) {
    out.ids.reserve(total);
    out.orbit.reserve(total);
    out.flags.reserve(total);
  }
  for (const Chunk& t : tally) {
    out.census.num_necklaces += t.necklaces;
    out.census.orbit_states += t.orbit_states;
    out.census.num_deadlocks_outside_i += t.deadlocks;
    for (GlobalStateId id : t.reps)
      if (out.census.deadlock_orbit_reps.size() < max_samples)
        out.census.deadlock_orbit_reps.push_back(id);
    if (collect) {
      out.ids.insert(out.ids.end(), t.ids.begin(), t.ids.end());
      out.orbit.insert(out.orbit.end(), t.orbit.begin(), t.orbit.end());
      out.flags.insert(out.flags.end(), t.flags.begin(), t.flags.end());
    }
  }
  RINGSTAB_ASSERT(out.census.orbit_states == ring.num_states(),
                  "necklace orbit sizes must partition |D|^K");
  obs::counter("symmetry.necklaces").add(out.census.num_necklaces);
  obs::counter("symmetry.orbit_states").add(out.census.orbit_states);
  obs::counter("symmetry.deadlocks_found")
      .add(out.census.num_deadlocks_outside_i);
  return out;
}

/// Canonicalized, deduplicated successor ranks of every necklace, as CSR.
void build_quotient_graph(const RingInstance& ring, Quotient& q,
                          std::size_t num_threads) {
  const obs::Span span("symmetry.quotient_graph");
  const std::uint32_t n = q.size();
  const std::size_t k = ring.ring_size();
  const auto& space = ring.protocol().space();
  const std::span<const GlobalStateId> pow{ring.powers()};

  auto rank_of = [&](GlobalStateId id) {
    const auto it = std::lower_bound(q.ids.begin(), q.ids.end(), id);
    RINGSTAB_ASSERT(it != q.ids.end() && *it == id,
                    "canonicalized successor is not an enumerated necklace");
    return static_cast<std::uint32_t>(it - q.ids.begin());
  };

  const std::uint64_t chunks = num_chunks(n, 0);
  struct Chunk {
    std::vector<std::uint32_t> deg;  // per rank in the chunk
    std::vector<std::uint32_t> col;
  };
  std::vector<Chunk> built(chunks);
  parallel_for(n, num_threads, 0, [&](const ChunkRange& chunk, std::size_t) {
    Chunk& c = built[chunk.index];
    c.deg.assign(chunk.end - chunk.begin, 0);
    std::vector<Value> digits;
    std::vector<RingInstance::Step> succ;
    std::vector<std::uint32_t> targets;
    for (std::uint64_t r = chunk.begin; r < chunk.end; ++r) {
      ring.decode_into(q.ids[r], digits);
      ring.successors_from(q.ids[r], digits.data(), succ);
      targets.clear();
      for (const auto& step : succ) {
        const Value old_self = digits[step.process];
        digits[step.process] = space.self(step.transition.to);
        targets.push_back(rank_of(
            canonical_necklace_id(digits.data(), k, pow)));
        digits[step.process] = old_self;
      }
      std::sort(targets.begin(), targets.end());
      targets.erase(std::unique(targets.begin(), targets.end()),
                    targets.end());
      c.deg[r - chunk.begin] = static_cast<std::uint32_t>(targets.size());
      c.col.insert(c.col.end(), targets.begin(), targets.end());
    }
  });

  q.row.assign(n + 1, 0);
  std::uint64_t edges = 0;
  {
    std::uint64_t rank = 0;
    for (const Chunk& c : built)
      for (std::uint32_t d : c.deg) {
        q.row[rank++] = edges;
        edges += d;
      }
    q.row[n] = edges;
  }
  q.col.reserve(edges);
  for (const Chunk& c : built)
    q.col.insert(q.col.end(), c.col.begin(), c.col.end());
  obs::counter("symmetry.quotient_edges").add(edges);
  if (obs::enabled())
    obs::gauge("mem.csr_bytes")
        .set(q.row.size() * sizeof(q.row[0]) + q.col.size() * sizeof(q.col[0]));
}

/// Closure of I on the quotient: a necklace in I with any successor orbit
/// outside I breaks closure; the reported witness is re-derived as an
/// actual (source, target) transition of the smallest violating rank.
bool check_quotient_closure(
    const RingInstance& ring, const Quotient& q, std::size_t num_threads,
    std::optional<std::pair<GlobalStateId, GlobalStateId>>* violation) {
  const obs::Span span("symmetry.closure");
  const std::uint32_t n = q.size();
  const std::uint64_t chunks = num_chunks(n, 0);
  std::vector<std::uint32_t> first_bad(chunks, kUnvisited);
  parallel_for(n, num_threads, 0, [&](const ChunkRange& chunk, std::size_t) {
    for (std::uint64_t r = chunk.begin; r < chunk.end; ++r) {
      if (!q.in_inv(static_cast<std::uint32_t>(r))) continue;
      for (std::uint64_t e = q.row[r]; e < q.row[r + 1]; ++e) {
        if (!q.in_inv(q.col[e])) {
          first_bad[chunk.index] = static_cast<std::uint32_t>(r);
          return;
        }
      }
    }
  });
  for (std::uint64_t c = 0; c < chunks; ++c) {
    if (first_bad[c] == kUnvisited) continue;
    if (violation) {
      // Re-derive a concrete escaping transition from the canonical source.
      const GlobalStateId s = q.ids[first_bad[c]];
      std::vector<RingInstance::Step> succ;
      ring.successors(s, succ);
      for (const auto& step : succ) {
        if (!ring.in_invariant(step.target)) {
          *violation = {s, step.target};
          break;
        }
      }
    }
    return false;
  }
  return true;
}

/// Backward fixpoint "can reach I" over the quotient graph, in synchronous
/// (Jacobi) rounds exactly like the full-space engine, so the round count
/// and result are thread-count-invariant.
bool check_quotient_weak_convergence(const Quotient& q,
                                     std::size_t num_threads) {
  const obs::Span span("symmetry.weak_convergence");
  obs::Counter& rounds = obs::counter("symmetry.fixpoint_rounds");
  const std::uint32_t n = q.size();
  std::vector<std::uint8_t> reaches(n), next(n);
  for (std::uint32_t r = 0; r < n; ++r) reaches[r] = q.in_inv(r) ? 1 : 0;
  const std::uint64_t chunks = num_chunks(n, 0);
  std::vector<std::uint8_t> chunk_changed(chunks, 0);
  while (true) {
    rounds.add(1);
    next = reaches;
    std::fill(chunk_changed.begin(), chunk_changed.end(), 0);
    parallel_for(n, num_threads, 0,
                 [&](const ChunkRange& chunk, std::size_t) {
      bool changed = false;
      for (std::uint64_t r = chunk.begin; r < chunk.end; ++r) {
        if (reaches[r]) continue;
        for (std::uint64_t e = q.row[r]; e < q.row[r + 1]; ++e) {
          if (reaches[q.col[e]]) {
            next[r] = 1;
            changed = true;
            break;
          }
        }
      }
      chunk_changed[chunk.index] = changed;
    });
    if (std::find(chunk_changed.begin(), chunk_changed.end(), 1) ==
        chunk_changed.end())
      break;
    std::swap(reaches, next);
  }
  return std::find(reaches.begin(), reaches.end(), 0) == reaches.end();
}

/// Livelock pass on the ¬I-restricted quotient graph, via the shared
/// FB/FWBW parallel SCC engine (graph/parallel_scc.hpp). Unlike the full
/// space, the quotient can have self-loops (a transition landing on a
/// nontrivial rotation of its source); a self-loop is a cycle. The witness
/// is canonical — anchored at the smallest ¬I rank lying on any cycle — so
/// it is bit-identical for every thread count. Returns quotient ranks, or
/// nullopt when the ¬I quotient is acyclic.
std::optional<std::vector<std::uint32_t>> find_quotient_cycle(
    const Quotient& q, std::size_t num_threads) {
  const obs::Span span("symmetry.livelock_scc");
  const std::uint32_t n = q.size();
  // Compact the ¬I ranks into a sub-CSR: sub[i] is the i-th rank outside I,
  // edges into I are dropped (they cannot lie on a ¬I cycle), self-loops
  // are kept.
  std::vector<std::uint32_t> sub_of(n, kUnvisited), rank_of;
  for (std::uint32_t r = 0; r < n; ++r)
    if (!q.in_inv(r)) {
      sub_of[r] = static_cast<std::uint32_t>(rank_of.size());
      rank_of.push_back(r);
    }
  CsrGraph g;
  g.row.assign(rank_of.size() + 1, 0);
  for (std::uint32_t i = 0; i < rank_of.size(); ++i) {
    const std::uint32_t r = rank_of[i];
    g.row[i + 1] = g.row[i];
    for (std::uint64_t e = q.row[r]; e < q.row[r + 1]; ++e)
      if (sub_of[q.col[e]] != kUnvisited) {
        g.col.push_back(sub_of[q.col[e]]);
        ++g.row[i + 1];
      }
  }

  const ParallelSccResult scc = parallel_scc(g, num_threads);
  std::uint32_t start = kUnvisited;
  for (std::uint32_t v = 0; v < rank_of.size(); ++v)
    if (scc.on_cycle(v)) {
      start = v;
      break;
    }
  if (start == kUnvisited) return std::nullopt;
  std::vector<std::uint32_t> cycle;
  for (const std::uint32_t v : extract_component_cycle(g, scc, start))
    cycle.push_back(rank_of[v]);
  return cycle;
}

/// Lift a quotient cycle to a genuine full-space cycle: walk actual
/// transitions whose canonicalizations follow the quotient cycle. Each lap
/// returns to some rotation of the start; the walk through (state, lap
/// position 0) pairs must repeat within ord(rotation) ≤ K laps, and the
/// segment between the repeats is a real cycle, entirely outside I.
std::vector<GlobalStateId> lift_quotient_cycle(
    const RingInstance& ring, const Quotient& q,
    const std::vector<std::uint32_t>& cycle) {
  const std::size_t k = ring.ring_size();
  const std::span<const GlobalStateId> pow{ring.powers()};
  std::vector<GlobalStateId> path;
  std::unordered_map<GlobalStateId, std::size_t> seen_at_start;
  std::vector<RingInstance::Step> succ;
  std::vector<Value> digits;
  GlobalStateId x = q.ids[cycle[0]];
  for (std::size_t lap = 0; lap <= k; ++lap) {
    const auto [it, fresh] = seen_at_start.emplace(x, path.size());
    if (!fresh) {
      std::vector<GlobalStateId> witness(path.begin() + it->second,
                                         path.end());
      obs::counter("symmetry.lift_steps").add(witness.size());
      return witness;
    }
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      path.push_back(x);
      const GlobalStateId want = q.ids[cycle[(i + 1) % cycle.size()]];
      ring.successors(x, succ);
      bool stepped = false;
      for (const auto& step : succ) {
        ring.decode_into(step.target, digits);
        if (canonical_necklace_id(digits.data(), k, pow) == want) {
          x = step.target;
          stepped = true;
          break;
        }
      }
      RINGSTAB_ASSERT(stepped, "quotient edge failed to lift");
    }
  }
  RINGSTAB_ASSERT(false, "quotient cycle lift did not close within K laps");
  return {};
}

/// Longest path to I on the quotient (rotation-invariant, so it equals the
/// full-space recovery bound). Memoized DFS; only called when the instance
/// strongly converges, mirroring the plain checker.
std::size_t quotient_recovery_steps(const Quotient& q) {
  const obs::Span span("symmetry.recovery_layering");
  constexpr std::uint32_t kUnknown = 0xfffffffeu;
  constexpr std::uint32_t kInProgress = 0xfffffffdu;
  const std::uint32_t n = q.size();
  std::vector<std::uint32_t> depth(n, kUnknown);
  std::size_t best = 0;
  auto dfs = [&](auto&& self, std::uint32_t r) -> std::uint32_t {
    if (q.in_inv(r)) return 0;
    if (depth[r] == kInProgress)
      throw ModelError("cycle outside I: not strongly converging");
    if (depth[r] != kUnknown) return depth[r];
    depth[r] = kInProgress;
    if (q.row[r] == q.row[r + 1])
      throw ModelError("deadlock outside I: not strongly converging");
    std::uint32_t d = 0;
    for (std::uint64_t e = q.row[r]; e < q.row[r + 1]; ++e)
      d = std::max(d, 1 + self(self, q.col[e]));
    depth[r] = d;
    return d;
  };
  for (std::uint32_t r = 0; r < n; ++r)
    best = std::max<std::size_t>(best, dfs(dfs, r));
  return best;
}

}  // namespace

GlobalStateId canonical_rotation(const RingInstance& ring, GlobalStateId s) {
  const auto digits = ring.decode(s);
  return canonical_necklace_id(digits.data(), ring.ring_size(),
                               std::span<const GlobalStateId>{ring.powers()});
}

std::size_t rotation_orbit_size(const RingInstance& ring, GlobalStateId s) {
  const auto digits = ring.decode(s);
  return cyclic_period(digits.data(), ring.ring_size());
}

NecklaceCensus necklace_census(const RingInstance& ring,
                               std::size_t max_samples,
                               std::size_t num_threads) {
  return run_census(ring, max_samples, num_threads == 0 ? 1 : num_threads,
                    /*collect=*/false)
      .census;
}

SymmetricCheckResult check_symmetric(const RingInstance& ring,
                                     std::size_t max_samples,
                                     std::size_t num_threads) {
  const obs::Span span("symmetry.check");
  if (num_threads == 0) num_threads = 1;
  SymmetricCheckResult res;
  res.ring_size = ring.ring_size();
  res.num_states = ring.num_states();

  CensusBuild build =
      run_census(ring, max_samples, num_threads, /*collect=*/true);
  res.num_necklaces = build.census.num_necklaces;
  res.canonical_states_visited = build.census.num_necklaces;
  res.num_deadlocks_outside_i = build.census.num_deadlocks_outside_i;
  res.deadlock_orbit_reps = std::move(build.census.deadlock_orbit_reps);

  Quotient q;
  q.ids = std::move(build.ids);
  q.orbit = std::move(build.orbit);
  q.flags = std::move(build.flags);
  RINGSTAB_ASSERT(q.ids.size() < kUnvisited,
                  "quotient too large for 32-bit ranks");
  build_quotient_graph(ring, q, num_threads);

  res.closure_ok =
      check_quotient_closure(ring, q, num_threads, &res.closure_violation);
  res.weakly_converges = check_quotient_weak_convergence(q, num_threads);
  if (const auto cycle = find_quotient_cycle(q, num_threads)) {
    res.has_livelock = true;
    res.livelock_cycle = lift_quotient_cycle(ring, q, *cycle);
  }
  if (res.strongly_converges())
    res.max_recovery_steps = quotient_recovery_steps(q);
  return res;
}

}  // namespace ringstab
