// FKM/Duval necklace enumeration over length-K strings on a |D|-letter
// alphabet — the engine behind the rotation-symmetry quotient.
//
// A necklace is the canonical (numerically minimal mixed-radix encoding)
// representative of one rotation orbit of global ring states. The
// Fredricksen–Kessler–Maiorana recursion yields every necklace directly, in
// ascending canonical-id order, in amortized O(1) per necklace — it never
// touches the |D|^K full space, so enumerating the ~|D|^K / K orbit
// representatives costs ~K× less than scanning all states and filtering.
//
// Each necklace is reported with its *orbit size* (the number of distinct
// rotations, i.e. the primitive period of the cyclic word), which is what
// orbit-weighted counting needs: Σ orbit over all necklaces = |D|^K.
//
// Parallelism: the enumeration tree is partitioned by the top `prefix_len`
// most-significant digits into `num_slots` independent subtrees. Slots are
// in ascending canonical-id order, so chunking slots over the thread pool
// and merging per-chunk results in ascending slot order reproduces the
// serial enumeration order bit-for-bit, for every thread count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace ringstab {

/// O(K) least-rotation canonicalization (Duval's algorithm on the
/// conceptually doubled string): the minimal mixed-radix encoding of any
/// rotation of `digits` (ring order, least-significant digit first).
/// `pow[i]` must be |D|^i for i in [0, k). Replaces the O(K²)
/// rotate-and-compare scan everywhere a single state is canonicalized.
GlobalStateId canonical_necklace_id(const Value* digits, std::size_t k,
                                    std::span<const GlobalStateId> pow);

/// Primitive period of the cyclic word `digits` (ring order): the smallest
/// r > 0 with digits[(i+r) mod k] == digits[i] for all i. This equals the
/// rotation-orbit size and always divides k.
std::size_t cyclic_period(const Value* digits, std::size_t k);

/// Necklace enumerator for rings of `ring_size` processes over a
/// `domain_size`-value alphabet. Stateless between visits; one instance can
/// be shared by concurrent visit_slots() calls on disjoint slot ranges.
class NecklaceEnumerator {
 public:
  NecklaceEnumerator(std::size_t ring_size, std::size_t domain_size);

  std::size_t ring_size() const { return k_; }
  std::size_t domain_size() const { return d_; }

  /// Mixed-radix place values |D|^i, i in [0, K).
  std::span<const GlobalStateId> powers() const { return pow_; }

  /// Number of prefix subtrees the enumeration is split into — a
  /// deterministic function of (K, |D|) only, never of the thread count.
  std::uint64_t num_slots() const { return num_slots_; }

  /// Visit every necklace whose top `prefix_len` digits encode to a slot in
  /// [begin, end), in ascending canonical-id order. The visitor is called
  /// as visit(digits, id, orbit) where `digits` points at the canonical
  /// digit vector in ring order (valid only during the call), `id` is its
  /// encoding, and `orbit` the rotation-orbit size.
  template <typename Visitor>
  void visit_slots(std::uint64_t begin, std::uint64_t end,
                   Visitor&& visit) const {
    std::vector<Value> a(k_ + 1, 0);   // FKM string, a[1..K], msd first
    std::vector<Value> digits(k_, 0);  // ring order: digits[K-t] = a[t]
    for (std::uint64_t slot = begin; slot < end; ++slot) {
      std::size_t p = 0;
      GlobalStateId partial = 0;
      if (!seed_slot(slot, a.data(), digits.data(), p, partial)) continue;
      descend(prefix_len_ + 1, p, partial, a.data(), digits.data(), visit);
    }
  }

  template <typename Visitor>
  void visit_all(Visitor&& visit) const {
    visit_slots(0, num_slots_, visit);
  }

 private:
  /// Decode `slot` into a[1..prefix_len] / the digit mirror and compute the
  /// FKM period of the prefix. Returns false when the prefix is not a
  /// prenecklace (no necklace starts with it).
  bool seed_slot(std::uint64_t slot, Value* a, Value* digits, std::size_t& p,
                 GlobalStateId& partial) const;

  /// The FKM recursion below the seeded prefix: a[1..t-1] is a prenecklace
  /// with period p; `partial` is its encoded contribution. Amortized O(1)
  /// per emitted necklace (the tree has O(necklaces) nodes).
  template <typename Visitor>
  void descend(std::size_t t, std::size_t p, GlobalStateId partial, Value* a,
               Value* digits, Visitor&& visit) const {
    if (t > k_) {
      if (k_ % p == 0)
        visit(static_cast<const Value*>(digits), partial,
              static_cast<std::uint32_t>(p));
      return;
    }
    const Value lo = a[t - p];
    a[t] = lo;
    digits[k_ - t] = lo;
    descend(t + 1, p, partial + GlobalStateId{lo} * pow_[k_ - t], a, digits,
            visit);
    for (std::size_t j = lo + 1; j < d_; ++j) {
      const Value v = static_cast<Value>(j);
      a[t] = v;
      digits[k_ - t] = v;
      descend(t + 1, t, partial + GlobalStateId{v} * pow_[k_ - t], a, digits,
              visit);
    }
  }

  std::size_t k_;
  std::size_t d_;
  std::size_t prefix_len_;
  std::uint64_t num_slots_;
  std::vector<GlobalStateId> pow_;
};

/// Total number of necklaces (rotation orbits) of length-k strings over a
/// d-letter alphabet, by enumeration.
std::uint64_t count_necklaces(std::size_t k, std::size_t d);

}  // namespace ringstab
