// Maximal matching on a bidirectional ring (paper Examples 4.1–4.3, Fig. 8).
#pragma once

#include "core/protocol.hpp"

namespace ringstab::protocols {

/// The matching domain {left, right, self} and locality {-1..+1}
/// (Example 4.1): m_r says whether P_r matches its predecessor, successor,
/// or nobody. LC_r is the paper's three-way disjunction.
///
/// An empty protocol (no transitions) over that structure; the common
/// skeleton of the matching variants and a synthesis input.
Protocol matching_skeleton();

/// Example 4.2: the generalizable maximal-matching protocol (actions
/// A1–A5, synthesized by STSyn for K=6) — deadlock-free for every K.
Protocol matching_generalizable();

/// Example 4.3: the non-generalizable variant (actions B1–B4) — stabilizes
/// at K=5 but deadlocks on rings whose size is a multiple of 4 or 6 (the
/// RCG cycles through ⟨left,left,self⟩).
Protocol matching_nongeneralizable();

/// The two-action fragment of Gouda & Acharya's matching solution used in
/// Figure 8 (t_ls, t_sl); exhibits the K=5 livelock
/// ⟨lslsl, sslsl, …⟩ the paper walks through.
Protocol matching_gouda_acharya_fragment();

/// Example 4.3's protocol with the paper's suggested repair applied:
/// "resolving the local deadlock ⟨left,left,self⟩ renders RCG_p without
/// cycles including local states in ¬LC_r; i.e., p(K) becomes deadlock free
/// for any ring size K." One local transition is added at ⟨l,l,s⟩.
Protocol matching_nongeneralizable_fixed();

}  // namespace ringstab::protocols
