#include "protocols/matching.hpp"

#include "core/builder.hpp"

namespace ringstab::protocols {
namespace {

enum : Value { kLeft = 0, kRight = 1, kSelf = 2 };

Domain matching_domain() {
  return Domain::named({"left", "right", "self"});
}

// LC_r of Example 4.1:
// (m_r=right ∧ m_{r+1}=left) ∨ (m_{r-1}=right ∧ m_r=left)
//   ∨ (m_{r-1}=left ∧ m_r=self ∧ m_{r+1}=right).
bool matching_legit(const LocalView& v) {
  return (v[0] == kRight && v[1] == kLeft) ||
         (v[-1] == kRight && v[0] == kLeft) ||
         (v[-1] == kLeft && v[0] == kSelf && v[1] == kRight);
}

ProtocolBuilder base(std::string name) {
  ProtocolBuilder b(std::move(name), matching_domain(), Locality{1, 1});
  b.legitimate(matching_legit);
  return b;
}

}  // namespace

Protocol matching_skeleton() { return base("matching").build(); }

Protocol matching_generalizable() {
  auto b = base("matching_gen");
  // A1
  b.action("A1",
           [](const LocalView& v) {
             return v[-1] == kLeft && v[0] != kSelf && v[1] == kRight;
           },
           [](const LocalView&) { return Value{kSelf}; });
  // A2 (nondeterministic: right | left)
  b.action("A2",
           [](const LocalView& v) {
             return v[-1] == kSelf && v[0] == kSelf && v[1] == kSelf;
           },
           ProtocolBuilder::MultiEffect([](const LocalView&) {
             return std::vector<Value>{kRight, kLeft};
           }));
  // A3
  b.action("A3a",
           [](const LocalView& v) { return v[-1] == kRight && v[0] == kSelf; },
           [](const LocalView&) { return Value{kLeft}; });
  b.action("A3b",
           [](const LocalView& v) { return v[0] == kSelf && v[1] == kLeft; },
           [](const LocalView&) { return Value{kRight}; });
  // A4
  b.action("A4a",
           [](const LocalView& v) {
             return v[-1] == kRight && v[0] == kRight && v[1] != kLeft;
           },
           [](const LocalView&) { return Value{kLeft}; });
  b.action("A4b",
           [](const LocalView& v) {
             return v[-1] != kRight && v[0] == kLeft && v[1] == kLeft;
           },
           [](const LocalView&) { return Value{kRight}; });
  // A5
  b.action("A5a",
           [](const LocalView& v) {
             return v[-1] == kSelf && v[0] != kLeft && v[1] == kRight;
           },
           [](const LocalView&) { return Value{kLeft}; });
  b.action("A5b",
           [](const LocalView& v) {
             return v[-1] == kLeft && v[0] != kRight && v[1] == kSelf;
           },
           [](const LocalView&) { return Value{kRight}; });
  return b.build();
}

Protocol matching_nongeneralizable() {
  auto b = base("matching_nongen");
  // B1
  b.action("B1",
           [](const LocalView& v) {
             return v[-1] == kLeft && v[0] != kSelf && v[1] == kRight;
           },
           [](const LocalView&) { return Value{kSelf}; });
  // B2
  b.action("B2a",
           [](const LocalView& v) {
             return v[-1] == kRight && v[0] == kSelf && v[1] == kLeft;
           },
           [](const LocalView&) { return Value{kRight}; });
  b.action("B2b",
           [](const LocalView& v) {
             return v[-1] == kSelf && v[0] == kSelf && v[1] == kSelf;
           },
           [](const LocalView&) { return Value{kRight}; });
  // B3
  b.action("B3a",
           [](const LocalView& v) {
             return v[-1] == kRight && v[0] == kRight && v[1] == kLeft;
           },
           [](const LocalView&) { return Value{kLeft}; });
  b.action("B3b",
           [](const LocalView& v) {
             return v[-1] == kSelf && v[0] == kSelf && v[1] == kRight;
           },
           [](const LocalView&) { return Value{kLeft}; });
  // B4
  b.action("B4a",
           [](const LocalView& v) {
             return v[-1] == kRight && v[0] != kLeft && v[1] != kLeft;
           },
           [](const LocalView&) { return Value{kLeft}; });
  b.action("B4b",
           [](const LocalView& v) {
             return v[-1] != kRight && v[0] != kRight && v[1] == kLeft;
           },
           [](const LocalView&) { return Value{kRight}; });
  return b.build();
}

Protocol matching_nongeneralizable_fixed() {
  const Protocol base = matching_nongeneralizable();
  // Resolve ⟨left,left,self⟩ by letting it withdraw the stale left-match
  // (m_r := self); both bad cycles of Figure 3 pass through this state.
  const auto& space = base.space();
  const LocalStateId lls =
      space.encode(std::vector<Value>{kLeft, kLeft, kSelf});
  return base.with_added("matching_nongen_fixed",
                         {{lls, space.with_self(lls, kSelf)}});
}

Protocol matching_gouda_acharya_fragment() {
  auto b = base("matching_ga");
  b.action("t_ls",
           [](const LocalView& v) { return v[0] == kLeft && v[-1] == kLeft; },
           [](const LocalView&) { return Value{kSelf}; });
  b.action("t_sl",
           [](const LocalView& v) { return v[0] == kSelf && v[-1] != kLeft; },
           [](const LocalView&) { return Value{kLeft}; });
  return b.build();
}

}  // namespace ringstab::protocols
