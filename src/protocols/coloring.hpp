// Ring coloring protocols (paper Section 6.1/6.2: 3-coloring, 2-coloring).
#pragma once

#include "core/protocol.hpp"

namespace ringstab::protocols {

/// Empty coloring protocol on a unidirectional ring: domain {0..c-1},
/// LC_r: c_r ≠ c_{r-1}. Synthesis input for Section 6.1 (c=3) and the
/// 2-coloring impossibility discussion (c=2).
Protocol coloring_empty(std::size_t num_colors);

/// The rotation candidate {t01, t12, t20} of Section 6.1 that the
/// methodology rejects: it forms the pseudo-livelock ≪0,1,2≫ and the
/// contiguous trail through {00,11,22} — and indeed livelocks globally.
Protocol three_coloring_rotation();

/// Generic "pick i → j" candidate built from a choice of target color per
/// monochromatic deadlock: chosen[i] = j adds t_ij : c_{r-1}=c_r=i → c_r:=j.
Protocol coloring_with_choices(std::size_t num_colors,
                               const std::vector<Value>& chosen);

}  // namespace ringstab::protocols
