// Protocols for the ARRAY (open chain) extension — domain's last value is
// the boundary marker ⊥ (see local/array.hpp).
#pragma once

#include "core/protocol.hpp"

namespace ringstab::protocols {

/// Agreement on an array: everyone copies its predecessor; process 0 (which
/// sees ⊥) is always legitimate. Converges for every length. `values` is
/// the number of real values (the domain gets one extra ⊥ slot).
Protocol array_agreement(std::size_t values = 2);

/// Sorting sweep: LC_r: x[-1]=⊥ ∨ x[-1] ≤ x[0] (non-decreasing array);
/// out-of-order processes copy the predecessor (max-propagation).
Protocol array_sort(std::size_t values = 3);

/// 2-coloring on an array: LC_r: x[-1]=⊥ ∨ x[-1] ≠ x[0]. IMPOSSIBLE on
/// unidirectional rings (paper Fig. 11), but on arrays the parity
/// obstruction disappears: flipping monochromatic pairs converges for every
/// length.
Protocol array_two_coloring();

/// A deliberately broken array protocol: like array_two_coloring but the
/// corrective action only fires when the predecessor is 0, leaving the
/// (1,1) deadlock in place — deadlocked arrays exist for every length ≥ 2.
Protocol array_two_coloring_broken();

}  // namespace ringstab::protocols
