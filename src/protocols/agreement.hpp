// Agreement protocols on unidirectional rings (paper Example 5.2, Sec. 6.2).
#pragma once

#include "core/protocol.hpp"

namespace ringstab::protocols {

/// Empty binary agreement: domain {0,1}, reads x[-1]..x[0],
/// LC_r: x_r = x_{r-1}, no transitions. The Section 6.2 synthesis input.
Protocol agreement_empty(std::size_t domain_size = 2);

/// Example 5.2: both corrective transitions t01 and t10 — livelocks for
/// K ≥ 4 (the paper's K=4 livelock ≪1000,1100,…≫).
Protocol agreement_both();

/// The accepted synthesis outcome: only one corrective transition
/// (x_{r-1} > x_r → copy for `copy_up`, else the mirror).
Protocol agreement_one_sided(bool copy_up = true);

/// k-ary generalization of the one-sided solution: x_{r-1} ≠ x_r and
/// x_r < x_{r-1} → x_r := x_{r-1} (max wins). Livelock-free ∀K by NPL.
Protocol agreement_max(std::size_t domain_size);

}  // namespace ringstab::protocols
