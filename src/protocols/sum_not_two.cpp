#include "protocols/sum_not_two.hpp"

#include "core/builder.hpp"
#include "core/fmt.hpp"

namespace ringstab::protocols {
namespace {

ProtocolBuilder base(std::string name, std::size_t d, int q) {
  ProtocolBuilder b(std::move(name), Domain::range(d), Locality{1, 0});
  b.legitimate([q](const LocalView& v) { return v[-1] + v[0] != q; });
  return b;
}

}  // namespace

Protocol sum_not_two_empty() { return base("sum_not_two", 3, 2).build(); }

Protocol sum_not_two_solution() {
  auto b = base("sum_not_two_ss", 3, 2);
  b.action("bump_up",
           [](const LocalView& v) { return v[-1] + v[0] == 2 && v[0] != 2; },
           [](const LocalView& v) { return static_cast<Value>((v[0] + 1) % 3); });
  b.action("bump_down",
           [](const LocalView& v) { return v[-1] + v[0] == 2 && v[0] == 2; },
           [](const LocalView& v) { return static_cast<Value>((v[0] + 2) % 3); });
  return b.build();
}

Protocol sum_not_two_rotation(bool rotation_up) {
  auto b = base(rotation_up ? "sum_not_two_rot_up" : "sum_not_two_rot_down", 3,
                2);
  // Rotation up: every illegitimate deadlock bumps x_r by +1 mod 3
  // ({t01 at 20, t12 at 11, t20 at 02}); rotation down is the mirror.
  const int step = rotation_up ? 1 : 2;
  b.action(rotation_up ? "rot_up" : "rot_down",
           [](const LocalView& v) { return v[-1] + v[0] == 2; },
           [step](const LocalView& v) {
             return static_cast<Value>((v[0] + step) % 3);
           });
  return b.build();
}

Protocol sum_not_q_empty(std::size_t domain_size, int q) {
  return base(cat("sum_not_", q, "_d", domain_size), domain_size, q).build();
}

}  // namespace ringstab::protocols
