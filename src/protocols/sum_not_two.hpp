// The Sum-Not-Two protocol (paper Section 6.2).
#pragma once

#include "core/protocol.hpp"

namespace ringstab::protocols {

/// Empty Sum-Not-Two: domain {0,1,2} on a unidirectional ring,
/// LC_r: x_r + x_{r-1} ≠ 2. Synthesis input; Resolve = {20, 11, 02}.
Protocol sum_not_two_empty();

/// The paper's accepted solution {t21, t12, t01}:
///   (x_r + x_{r-1} = 2) ∧ (x_r ≠ 2) → x_r := (x_r + 1) mod 3
///   (x_r + x_{r-1} = 2) ∧ (x_r = 2) → x_r := (x_r − 1) mod 3
Protocol sum_not_two_solution();

/// One of the two rejected "rotation" candidates, whose pseudo-livelock
/// participates in a contiguous trail (which turns out to be *spurious* —
/// the paper's non-necessity discussion). rotation_up picks
/// {t01, t12, t20}; otherwise {t21, t10, t02}.
Protocol sum_not_two_rotation(bool rotation_up);

/// Generalization used by sweeps: domain {0..d-1}, LC_r: x_r + x_{r-1} ≠ q.
Protocol sum_not_q_empty(std::size_t domain_size, int q);

}  // namespace ringstab::protocols
