#include "protocols/agreement.hpp"

#include "core/builder.hpp"

namespace ringstab::protocols {
namespace {

ProtocolBuilder base(std::string name, std::size_t domain_size) {
  ProtocolBuilder b(std::move(name), Domain::range(domain_size),
                    Locality{1, 0});
  b.legitimate([](const LocalView& v) { return v[-1] == v[0]; });
  return b;
}

}  // namespace

Protocol agreement_empty(std::size_t domain_size) {
  return base("agreement", domain_size).build();
}

Protocol agreement_both() {
  auto b = base("agreement_both", 2);
  b.action("t01",
           [](const LocalView& v) { return v[-1] == 1 && v[0] == 0; },
           [](const LocalView&) { return Value{1}; });
  b.action("t10",
           [](const LocalView& v) { return v[-1] == 0 && v[0] == 1; },
           [](const LocalView&) { return Value{0}; });
  return b.build();
}

Protocol agreement_one_sided(bool copy_up) {
  auto b = base(copy_up ? "agreement_up" : "agreement_down", 2);
  if (copy_up) {
    b.action("t01",
             [](const LocalView& v) { return v[-1] == 1 && v[0] == 0; },
             [](const LocalView&) { return Value{1}; });
  } else {
    b.action("t10",
             [](const LocalView& v) { return v[-1] == 0 && v[0] == 1; },
             [](const LocalView&) { return Value{0}; });
  }
  return b.build();
}

Protocol agreement_max(std::size_t domain_size) {
  auto b = base("agreement_max", domain_size);
  b.action("copy_max",
           [](const LocalView& v) { return v[0] < v[-1]; },
           [](const LocalView& v) { return v[-1]; });
  return b.build();
}

}  // namespace ringstab::protocols
