// Additional ring protocols exercising the library beyond the paper's set.
#pragma once

#include "core/protocol.hpp"

namespace ringstab::protocols {

/// "No adjacent tokens": domain {0,1} on a unidirectional ring,
/// LC_r: ¬(x_{r-1}=1 ∧ x_r=1). Empty transition set (synthesis input). The
/// NPL fast path applies: the single candidate t: 11→10 never cycles.
Protocol no_adjacent_ones_empty();

/// The synthesized solution: x_{r-1}=1 ∧ x_r=1 → x_r := 0.
Protocol no_adjacent_ones_solution();

/// Gouda & Acharya-style full maximal matching is bidirectional; this is a
/// *unidirectional* "local leader" toy: LC_r: x_r = 1 − x_{r-1} fails on odd
/// rings like 2-coloring; used in tests of impossibility reporting.
Protocol alternator_empty();

/// Monotone ring: LC_r: x_r ≥ x_{r-1}, which on a ring forces all values
/// equal (the same I as agreement, reached through a different conjunct).
/// Empty transition set; a synthesis input whose Resolve structure differs
/// from agreement's.
Protocol monotone_empty(std::size_t domain_size = 3);

}  // namespace ringstab::protocols
