#include "protocols/coloring.hpp"

#include "core/builder.hpp"
#include "core/fmt.hpp"

namespace ringstab::protocols {
namespace {

ProtocolBuilder base(std::string name, std::size_t num_colors) {
  ProtocolBuilder b(std::move(name), Domain::range(num_colors),
                    Locality{1, 0});
  b.legitimate([](const LocalView& v) { return v[-1] != v[0]; });
  return b;
}

}  // namespace

Protocol coloring_empty(std::size_t num_colors) {
  return base(cat(num_colors, "coloring"), num_colors).build();
}

Protocol three_coloring_rotation() {
  return coloring_with_choices(3, {1, 2, 0});
}

Protocol coloring_with_choices(std::size_t num_colors,
                               const std::vector<Value>& chosen) {
  if (chosen.size() != num_colors)
    throw ModelError("need one target color per monochromatic deadlock");
  auto b = base(cat(num_colors, "coloring_fix"), num_colors);
  for (std::size_t i = 0; i < num_colors; ++i) {
    if (chosen[i] >= num_colors)
      throw ModelError("target color outside the palette");
    if (chosen[i] == i)
      throw ModelError("target color must differ from the deadlock color");
    b.action(cat("t", i, chosen[i]),
             [i](const LocalView& v) {
               return v[-1] == static_cast<Value>(i) &&
                      v[0] == static_cast<Value>(i);
             },
             [j = chosen[i]](const LocalView&) { return j; });
  }
  return b.build();
}

}  // namespace ringstab::protocols
