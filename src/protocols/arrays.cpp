#include "protocols/arrays.hpp"

#include "core/builder.hpp"
#include "core/fmt.hpp"

namespace ringstab::protocols {
namespace {

// Domain of `values` real values plus the trailing ⊥.
Domain array_domain(std::size_t values) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < values; ++i) names.push_back(std::to_string(i));
  names.push_back("B");  // ⊥ (abbreviated 'B' in dumps)
  return Domain::named(std::move(names));
}

}  // namespace

Protocol array_agreement(std::size_t values) {
  const Value bot = static_cast<Value>(values);
  ProtocolBuilder b(cat("array_agreement_", values), array_domain(values),
                    Locality{1, 0});
  b.legitimate([bot](const LocalView& v) {
    return v[-1] == bot || v[-1] == v[0];
  });
  b.action("copy",
           [bot](const LocalView& v) {
             return v[-1] != bot && v[0] != bot && v[-1] != v[0];
           },
           [](const LocalView& v) { return v[-1]; });
  return b.build();
}

Protocol array_sort(std::size_t values) {
  const Value bot = static_cast<Value>(values);
  ProtocolBuilder b(cat("array_sort_", values), array_domain(values),
                    Locality{1, 0});
  b.legitimate([bot](const LocalView& v) {
    return v[-1] == bot || (v[0] != bot && v[-1] <= v[0]);
  });
  b.action("pull_up",
           [bot](const LocalView& v) {
             return v[-1] != bot && v[0] != bot && v[-1] > v[0];
           },
           [](const LocalView& v) { return v[-1]; });
  return b.build();
}

Protocol array_two_coloring() {
  const Value bot = 2;
  ProtocolBuilder b("array_2coloring", array_domain(2), Locality{1, 0});
  b.legitimate([](const LocalView& v) {
    return v[-1] == bot || (v[0] != bot && v[-1] != v[0]);
  });
  b.action("flip",
           [](const LocalView& v) {
             return v[-1] != bot && v[0] != bot && v[-1] == v[0];
           },
           [](const LocalView& v) { return static_cast<Value>(1 - v[0]); });
  return b.build();
}

Protocol array_two_coloring_broken() {
  const Value bot = 2;
  ProtocolBuilder b("array_2coloring_broken", array_domain(2),
                    Locality{1, 0});
  b.legitimate([](const LocalView& v) {
    return v[-1] == bot || (v[0] != bot && v[-1] != v[0]);
  });
  b.action("flip_only_zero",
           [](const LocalView& v) { return v[-1] == 0 && v[0] == 0; },
           [](const LocalView&) { return Value{1}; });
  return b.build();
}

}  // namespace ringstab::protocols
