#include "protocols/misc.hpp"

#include "core/builder.hpp"

namespace ringstab::protocols {

Protocol no_adjacent_ones_empty() {
  ProtocolBuilder b("no_adjacent_ones", Domain::range(2), Locality{1, 0});
  b.legitimate([](const LocalView& v) { return !(v[-1] == 1 && v[0] == 1); });
  return b.build();
}

Protocol no_adjacent_ones_solution() {
  ProtocolBuilder b("no_adjacent_ones_ss", Domain::range(2), Locality{1, 0});
  b.legitimate([](const LocalView& v) { return !(v[-1] == 1 && v[0] == 1); });
  b.action("drop",
           [](const LocalView& v) { return v[-1] == 1 && v[0] == 1; },
           [](const LocalView&) { return Value{0}; });
  return b.build();
}

Protocol alternator_empty() {
  ProtocolBuilder b("alternator", Domain::range(2), Locality{1, 0});
  b.legitimate([](const LocalView& v) { return v[0] == 1 - v[-1]; });
  return b.build();
}

Protocol monotone_empty(std::size_t domain_size) {
  ProtocolBuilder b("monotone", Domain::range(domain_size), Locality{1, 0});
  b.legitimate([](const LocalView& v) { return v[0] >= v[-1]; });
  return b.build();
}

}  // namespace ringstab::protocols
