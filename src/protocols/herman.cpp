#include "protocols/herman.hpp"

#include "core/builder.hpp"

namespace ringstab::protocols {

Protocol herman_ring() {
  ProtocolBuilder b("herman", Domain::range(2), Locality{1, 0});
  b.legitimate([](const LocalView& v) { return v[-1] != v[0]; });
  b.action("toss",
           [](const LocalView& v) { return v[-1] == v[0]; },
           [](const LocalView& v) { return static_cast<Value>(1 - v[0]); });
  b.action("pass",
           [](const LocalView& v) { return v[-1] != v[0]; },
           [](const LocalView& v) { return v[-1]; });
  return b.build();
}

std::size_t herman_token_count(const std::vector<Value>& state) {
  std::size_t tokens = 0;
  for (std::size_t i = 0; i < state.size(); ++i)
    if (state[(i + state.size() - 1) % state.size()] == state[i]) ++tokens;
  return tokens;
}

double herman_conjecture_bound(std::size_t ring_size) {
  const double k = static_cast<double>(ring_size);
  return 4.0 * k * k / 27.0;
}

}  // namespace ringstab::protocols
