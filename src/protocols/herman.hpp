// Herman's randomized token ring (Herman 1990; docs/theory.md §7).
#pragma once

#include <cstdint>
#include <vector>

#include "core/protocol.hpp"

namespace ringstab::protocols {

/// Herman's self-stabilizing token ring over domain {0,1}, locality {1,0}.
/// Process r holds a token iff x_{r-1} = x_r, so LC_r: x_{r-1} ≠ x_r.
/// Two actions:
///   toss: x_{r-1} = x_r → x_r := 1 − x_r   (token holder re-randomizes)
///   pass: x_{r-1} ≠ x_r → x_r := x_{r-1}   (non-holder copies left)
/// Under the synchronous-coin scheduler (Scheduler::kSynchronousCoin with
/// coin = 1/2) this is exactly Herman's protocol: a holder's new value is a
/// fair coin (flip with p=1/2, keep otherwise), a non-holder always copies.
/// On odd rings the token count stays odd, so the one-token target
/// (ConvergenceTarget::kOneIllegit) is eventually reached with probability 1
/// and E[rounds] ≤ (4/27)·K² from every start (the Herman-protocol
/// conjecture, proved 2015 — PAPERS.md).
///
/// Note this is a *randomized* protocol: under an adversarial interleaving
/// daemon it does not stabilize (the adversary can shuttle tokens forever),
/// so the local/global certifiers correctly refuse to certify it. It exists
/// for the Monte Carlo estimator, not the checker.
Protocol herman_ring();

/// Number of token holders in a concrete ring state: |{r : x_{r-1} = x_r}|.
/// On odd rings the parity of this count is invariant under Herman rounds.
std::size_t herman_token_count(const std::vector<Value>& state);

/// The Herman-protocol-conjecture bound on expected convergence rounds to
/// one token from any start: (4/27)·K². Tight at K=3 (all-equal start is
/// geometric with success probability 3/4, so E = 4/3 = (4/27)·9).
double herman_conjecture_bound(std::size_t ring_size);

}  // namespace ringstab::protocols
