// Right Continuation Graph (paper Definition 4.1).
#pragma once

#include "core/protocol.hpp"
#include "graph/digraph.hpp"

namespace ringstab {

/// The RCG over the *whole* local state space: vertex ids are LocalStateIds,
/// with an s-arc u → v iff v is a right continuation of u (the local state a
/// right successor process may be in). Every vertex has exactly |D| out-arcs
/// and |D| in-arcs.
Digraph build_rcg(const LocalStateSpace& space);

/// The RCG induced over the protocol's local deadlock states (vertex ids are
/// unchanged; non-deadlock vertices are isolated). This is the graph
/// Theorem 4.2 inspects.
Digraph deadlock_rcg(const Protocol& p);

/// As deadlock_rcg, but with an explicit extra set of states to exclude
/// (synthesis uses this to test Resolve candidates: the induced subgraph over
/// D_L \ Resolve).
Digraph deadlock_rcg_excluding(const Protocol& p,
                               const std::vector<bool>& excluded);

}  // namespace ringstab
