// Extension beyond the paper (its stated future work): local reasoning for
// parameterized protocols on ARRAYS (open chains) instead of rings.
//
// Modeling convention: the protocol's domain reserves its LAST value as the
// boundary marker ⊥. An array of N processes is embedded between virtual ⊥
// cells: process 0 sees ⊥ at its negative offsets, process N-1 at its
// positive offsets; real variables never hold ⊥. Guards may test for ⊥ to
// give end processes special behavior — all within one representative
// process, exactly as the paper's Definition 4.1 remark suggests.
//
// The ring Theorem 4.2 transfers with cycles replaced by WALKS: array(N)
// has a global deadlock outside I iff the deadlock-induced RCG has a walk
// of N vertices from a left-boundary deadlock to a right-boundary deadlock
// visiting some ¬LC state. Unlike the ring case there is no wrap-around
// constraint, so the walk construction is exact for every N ≥ window-1.
#pragma once

#include <optional>

#include "core/protocol.hpp"
#include "graph/walks.hpp"

namespace ringstab {

/// The reserved boundary value of an array protocol's domain.
inline Value boundary_value(const Protocol& p) {
  return static_cast<Value>(p.domain().size() - 1);
}

/// Validate the array modeling convention: no transition fires from or
/// writes a ⊥ self value, and ⊥ may appear in windows only as a contiguous
/// run touching the window's edge (left run and/or right run). Throws
/// ModelError otherwise.
void validate_array_protocol(const Protocol& p);

/// Is `s` a feasible local state for process `i` of an array of `n`
/// processes (its ⊥ pattern matches the boundary overhang)?
bool feasible_array_state(const Protocol& p, LocalStateId s, std::size_t i,
                          std::size_t n);

/// Deadlock analysis for every array length (the array analogue of
/// Theorem 4.2).
struct ArrayDeadlockAnalysis {
  bool deadlock_free_all_n = false;

  /// feasible[n] ⇒ a deadlocked array of n processes outside I exists;
  /// exact for every n ≥ 2 up to spectrum_max_n.
  std::vector<bool> size_spectrum;  // index n
  std::size_t spectrum_max_n = 0;

  std::vector<std::size_t> deadlocked_sizes() const;
};

ArrayDeadlockAnalysis analyze_array_deadlocks(const Protocol& p,
                                              std::size_t spectrum_max_n = 64);

/// Construct a deadlocked array of n processes outside I (the real variable
/// values x_0..x_{n-1}), or nullopt. Verified before returning.
std::optional<std::vector<Value>> array_deadlock_witness(const Protocol& p,
                                                         std::size_t n);

/// Livelock-freedom is FREE on unidirectional self-disabling arrays: P_0's
/// local state only changes when P_0 itself fires, so P_0 fires at most
/// #states times, and inductively every process fires boundedly often —
/// every computation terminates. Returns true iff that argument applies
/// (unidirectional locality and self-disabling δ_r).
bool array_terminates_always(const Protocol& p);

}  // namespace ringstab
