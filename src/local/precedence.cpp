#include "local/precedence.hpp"

#include <algorithm>

#include "core/fmt.hpp"

namespace ringstab {

LocalStateId local_state_of(const Protocol& p, const std::vector<Value>& ring,
                            std::size_t i) {
  const auto& loc = p.locality();
  const std::size_t k = ring.size();
  RINGSTAB_ASSERT(i < k, "process index out of range");
  std::vector<Value> window;
  window.reserve(static_cast<std::size_t>(loc.window()));
  for (int off = -loc.left; off <= loc.right; ++off) {
    const std::size_t j =
        (i + static_cast<std::size_t>(off + static_cast<int>(k))) % k;
    window.push_back(ring[j]);
  }
  return p.space().encode(window);
}

bool apply_step(const Protocol& p, std::vector<Value>& ring,
                const ScheduledStep& step) {
  if (local_state_of(p, ring, step.process) != step.transition.from)
    return false;
  const auto& delta = p.delta();
  if (!std::binary_search(delta.begin(), delta.end(), step.transition))
    return false;
  ring[step.process] = p.space().self(step.transition.to);
  return true;
}

std::optional<std::vector<std::vector<Value>>> execute_schedule(
    const Protocol& p, std::vector<Value> start, const Schedule& schedule) {
  std::vector<std::vector<Value>> states;
  states.reserve(schedule.size() + 1);
  states.push_back(start);
  for (const auto& step : schedule) {
    if (!apply_step(p, start, step)) return std::nullopt;
    states.push_back(start);
  }
  return states;
}

bool is_livelock_schedule(const Protocol& p, const std::vector<Value>& start,
                          const Schedule& schedule) {
  auto states = execute_schedule(p, start, schedule);
  if (!states) return false;
  if (states->back() != start) return false;
  // Every visited state must lie outside I (some process in ¬LC_r).
  for (const auto& s : *states) {
    bool outside = false;
    for (std::size_t i = 0; i < s.size() && !outside; ++i)
      outside = !p.is_legit(local_state_of(p, s, i));
    if (!outside) return false;
  }
  return true;
}

std::vector<std::pair<std::size_t, std::size_t>>
PrecedenceRelation::independent_pairs() const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t a = 0; a < size; ++a)
    for (std::size_t b = a + 1; b < size; ++b)
      if (independent(a, b)) out.emplace_back(a, b);
  return out;
}

namespace {

// Two steps are dependent iff one process's write is in the other's
// locality (read ∪ write sets overlap on the writable variables).
bool dependent(const Locality& loc, std::size_t ring_size, std::size_t pi,
               std::size_t pj) {
  const auto k = static_cast<long long>(ring_size);
  auto within = [&](std::size_t a, std::size_t b) {
    // does P_b read x_a? x_a ∈ {x_{b-left}, ..., x_{b+right}}
    for (int off = -loc.left; off <= loc.right; ++off) {
      const long long idx =
          ((static_cast<long long>(b) + off) % k + k) % k;
      if (idx == static_cast<long long>(a)) return true;
    }
    return false;
  };
  return within(pi, pj) || within(pj, pi);
}

}  // namespace

PrecedenceRelation livelock_precedence(const Protocol& p,
                                       std::size_t ring_size,
                                       const Schedule& schedule) {
  const std::size_t n = schedule.size();
  PrecedenceRelation rel;
  rel.size = n;
  rel.precedes.assign(n, std::vector<bool>(n, false));
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = a + 1; b < n; ++b)
      if (dependent(p.locality(), ring_size, schedule[a].process,
                    schedule[b].process))
        rel.precedes[a][b] = true;
  // Transitive closure (order already respects schedule positions, so a
  // Floyd–Warshall pass suffices).
  for (std::size_t m = 0; m < n; ++m)
    for (std::size_t a = 0; a < n; ++a) {
      if (!rel.precedes[a][m]) continue;
      for (std::size_t b = 0; b < n; ++b)
        if (rel.precedes[m][b]) rel.precedes[a][b] = true;
    }
  return rel;
}

std::size_t count_linear_extensions(const PrecedenceRelation& rel,
                                    bool fix_first) {
  const std::size_t n = rel.size;
  if (n > 24) throw CapacityError("schedule too long for extension counting");
  if (n == 0) return 1;

  // preds[b] = bitmask of steps that must precede b.
  std::vector<std::uint32_t> preds(n, 0);
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b < n; ++b)
      if (rel.precedes[a][b]) preds[b] |= (1u << a);

  const std::uint32_t full = (n == 32) ? 0xffffffffu : ((1u << n) - 1);
  std::vector<std::size_t> count(static_cast<std::size_t>(full) + 1, 0);
  const std::uint32_t seed = fix_first ? 1u : 0u;
  if (fix_first && preds[0] != 0) return 0;  // step 0 cannot go first
  count[seed] = 1;
  for (std::uint32_t mask = seed; mask <= full; ++mask) {
    if (count[mask] == 0) continue;
    for (std::size_t b = 0; b < n; ++b) {
      if (mask & (1u << b)) continue;
      if ((preds[b] & ~mask) != 0) continue;
      count[mask | (1u << b)] += count[mask];
    }
    if (mask == full) break;
  }
  return count[full];
}

std::vector<Schedule> precedence_preserving_schedules(
    const Protocol& p, const std::vector<Value>& start,
    const Schedule& schedule, std::size_t max_results) {
  RINGSTAB_ASSERT(is_livelock_schedule(p, start, schedule),
                  "input schedule is not one period of a livelock");
  const PrecedenceRelation rel =
      livelock_precedence(p, start.size(), schedule);
  const std::size_t n = schedule.size();

  std::vector<std::uint32_t> preds(n, 0);
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b < n; ++b)
      if (rel.precedes[a][b]) preds[b] |= (1u << a);

  std::vector<Schedule> out;
  std::vector<std::size_t> order{0};  // first step fixed
  auto dfs = [&](auto&& self, std::uint32_t mask) -> void {
    if (out.size() >= max_results) return;
    if (order.size() == n) {
      Schedule perm;
      perm.reserve(n);
      for (std::size_t idx : order) perm.push_back(schedule[idx]);
      RINGSTAB_ASSERT(is_livelock_schedule(p, start, perm),
                      "Lemma 5.11 violated: permuted schedule misfires");
      out.push_back(std::move(perm));
      return;
    }
    for (std::size_t b = 1; b < n; ++b) {
      if (mask & (1u << b)) continue;
      if ((preds[b] & ~mask) != 0) continue;
      order.push_back(b);
      self(self, mask | (1u << b));
      order.pop_back();
      if (out.size() >= max_results) return;
    }
  };
  if (n > 0 && preds[0] == 0) dfs(dfs, 1u);
  return out;
}

}  // namespace ringstab
