// Theorem 5.14: livelock-freedom for every ring size, decided locally.
#pragma once

#include "local/self_disabling.hpp"
#include "local/trail.hpp"

namespace ringstab {

/// Livelock analysis of a parameterized protocol via the contrapositive of
/// Theorem 5.14: if no contiguous trail satisfies the theorem's two
/// conditions, the protocol is livelock-free for every K.
struct LivelockAnalysis {
  enum class Verdict {
    kLivelockFree,  // no qualifying trail: livelock-free ∀K (sound)
    kTrailFound,    // a qualifying trail exists: the sufficient condition
                    // fails; a livelock MAY exist (the trail may be spurious
                    // — see the paper's sum-not-two discussion)
    kInconclusive,  // search budget exhausted
  };

  Verdict verdict = Verdict::kInconclusive;
  TrailSearchResult search;

  /// True iff the input was already self-disabling; otherwise the analysis
  /// ran on make_self_disabling(p) as Section 5 prescribes.
  bool was_self_disabling = true;

  /// Theorem 5.14 covers *all* livelocks only on unidirectional rings; on
  /// bidirectional rings the trail search models enablement circulating
  /// RIGHTWARD only, so a kLivelockFree verdict there rules out
  /// rightward-circulating contiguous livelocks and nothing more (a
  /// mirror-image protocol with a leftward livelock would be declared
  /// free). For bidirectional inputs prefer
  /// check_livelock_freedom_bidirectional (transform/transform.hpp), which
  /// also runs the search on the mirrored protocol.
  bool covers_all_livelocks = true;

  const std::optional<ContiguousTrail>& trail() const { return search.trail; }
};

LivelockAnalysis check_livelock_freedom(const Protocol& p,
                                        const TrailQuery& query = {});

}  // namespace ringstab
