// Local Transition Graph (paper Definition 5.3): RCG + t-arcs.
#pragma once

#include <string>

#include "core/protocol.hpp"
#include "graph/digraph.hpp"

namespace ringstab {

/// The LTG of a protocol: vertices are the local states of P_r; s-arcs are
/// the right-continuation relation; t-arcs are the protocol's local
/// transitions (δ_r, addressed by index into protocol().delta()).
class Ltg {
 public:
  explicit Ltg(Protocol protocol);

  const Protocol& protocol() const { return protocol_; }
  const LocalStateSpace& space() const { return protocol_.space(); }

  /// s-arc relation (the full RCG).
  const Digraph& s_arcs() const { return s_arcs_; }

  /// t-arcs = protocol().delta().
  const std::vector<LocalTransition>& t_arcs() const {
    return protocol_.delta();
  }

  std::size_t num_states() const { return protocol_.num_states(); }

  /// Dense id of an s-arc u→v: each u has exactly |D| right continuations,
  /// distinguished by v's rightmost window value. Used by the trail search
  /// to track arc usage compactly.
  std::size_t s_arc_id(LocalStateId u, LocalStateId v) const;
  std::size_t num_s_arc_ids() const {
    return num_states() * protocol_.domain().size();
  }

  /// Graphviz rendering: solid arcs are t-arcs, dashed arcs s-arcs,
  /// illegitimate states unfilled, deadlocks boxed.
  std::string to_dot(bool include_s_arcs = true) const;

 private:
  Protocol protocol_;
  Digraph s_arcs_;
};

}  // namespace ringstab
