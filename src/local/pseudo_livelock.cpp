#include "local/pseudo_livelock.hpp"

#include <algorithm>
#include <numeric>

#include "core/fmt.hpp"
#include "graph/cycles.hpp"

namespace ringstab {

WriteProjection::WriteProjection(const Protocol& p,
                                 std::span<const std::size_t> t_arc_indices) {
  if (t_arc_indices.empty()) {
    indices_.resize(p.delta().size());
    std::iota(indices_.begin(), indices_.end(), std::size_t{0});
  } else {
    indices_.assign(t_arc_indices.begin(), t_arc_indices.end());
  }
  const std::size_t d = p.domain().size();
  adj_.assign(d, std::vector<std::vector<std::size_t>>(d));
  write_pairs_.reserve(indices_.size());
  for (std::size_t idx : indices_) {
    RINGSTAB_ASSERT(idx < p.delta().size(), "t-arc index out of range");
    const auto& t = p.delta()[idx];
    const Value a = p.space().self(t.from);
    const Value b = p.space().self(t.to);
    write_pairs_.emplace_back(a, b);
    adj_[a][b].push_back(idx);
  }
}

const std::vector<std::size_t>& WriteProjection::arcs(Value a, Value b) const {
  return adj_[a][b];
}

bool WriteProjection::reaches(Value a, Value b) const {
  // Path of length >= 1 from a to b (so reaches(b, a) with a == b detects a
  // genuine cycle, not the empty path).
  const std::size_t d = adj_.size();
  std::vector<bool> expanded(d, false);
  std::vector<Value> stack{a};
  expanded[a] = true;
  while (!stack.empty()) {
    const Value u = stack.back();
    stack.pop_back();
    for (Value v = 0; v < d; ++v) {
      if (adj_[u][v].empty()) continue;
      if (v == b) return true;
      if (!expanded[v]) {
        expanded[v] = true;
        stack.push_back(v);
      }
    }
  }
  return false;
}

bool WriteProjection::on_value_cycle(std::size_t idx) const {
  const auto it = std::find(indices_.begin(), indices_.end(), idx);
  RINGSTAB_ASSERT(it != indices_.end(), "t-arc not in this projection");
  const auto& [a, b] =
      write_pairs_[static_cast<std::size_t>(it - indices_.begin())];
  return reaches(b, a);
}

bool WriteProjection::forms_pseudo_livelocks() const {
  return std::all_of(write_pairs_.begin(), write_pairs_.end(),
                     [&](const auto& pair) {
                       return reaches(pair.second, pair.first);
                     });
}

bool WriteProjection::has_pseudo_livelock() const {
  return std::any_of(write_pairs_.begin(), write_pairs_.end(),
                     [&](const auto& pair) {
                       return reaches(pair.second, pair.first);
                     });
}

std::string WriteProjection::describe(const Protocol& p) const {
  std::ostringstream os;
  const auto& dom = p.domain();
  bool first = true;
  for (Value a = 0; a < dom.size(); ++a)
    for (Value b = 0; b < dom.size(); ++b) {
      if (adj_[a][b].empty()) continue;
      if (!first) os << ", ";
      first = false;
      os << dom.name(a) << "→" << dom.name(b) << " {"
         << join(adj_[a][b], ",",
                 [](std::size_t i) { return cat("t#", i); })
         << "}";
    }
  os << (forms_pseudo_livelocks() ? " : union of value cycles"
                                  : " : NOT a union of value cycles");
  return os.str();
}

std::vector<std::vector<std::size_t>> minimal_pseudo_livelocks(
    const Protocol& p, std::span<const std::size_t> t_arc_indices,
    std::size_t max_results) {
  const WriteProjection proj(p, t_arc_indices);
  const std::size_t d = p.domain().size();

  // Value graph (one arc per nonempty bucket).
  Digraph values(d);
  for (Value a = 0; a < d; ++a)
    for (Value b = 0; b < d; ++b)
      if (!proj.arcs(a, b).empty()) values.add_arc(a, b);

  std::vector<std::vector<std::size_t>> out;
  for (const Cycle& cyc : simple_cycles(values)) {
    // Expand the cartesian product of t-arc choices along the value cycle.
    std::vector<const std::vector<std::size_t>*> buckets;
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      const Value a = static_cast<Value>(cyc[i]);
      const Value b = static_cast<Value>(cyc[(i + 1) % cyc.size()]);
      buckets.push_back(&proj.arcs(a, b));
    }
    std::vector<std::size_t> pick(buckets.size(), 0);
    while (true) {
      std::vector<std::size_t> subset;
      subset.reserve(buckets.size());
      for (std::size_t i = 0; i < buckets.size(); ++i)
        subset.push_back((*buckets[i])[pick[i]]);
      std::sort(subset.begin(), subset.end());
      out.push_back(std::move(subset));
      if (out.size() >= max_results) return out;
      std::size_t i = 0;
      for (; i < buckets.size(); ++i) {
        if (++pick[i] < buckets[i]->size()) break;
        pick[i] = 0;
      }
      if (i == buckets.size()) break;
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace ringstab
