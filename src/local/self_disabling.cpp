#include "local/self_disabling.hpp"

#include <algorithm>

#include "core/fmt.hpp"
#include "graph/digraph.hpp"
#include "graph/scc.hpp"

namespace ringstab {
namespace {

Digraph t_arc_graph(const Protocol& p) {
  Digraph g(p.num_states());
  for (const auto& t : p.delta()) g.add_arc(t.from, t.to);
  return g;
}

}  // namespace

bool is_self_disabling(const Protocol& p) {
  return std::all_of(p.delta().begin(), p.delta().end(),
                     [&](const LocalTransition& t) {
                       return p.is_deadlock(t.to);
                     });
}

bool is_self_terminating(const Protocol& p) {
  const Digraph g = t_arc_graph(p);
  std::vector<bool> all(p.num_states(), true);
  return !any_marked_on_cycle(g, all);
}

Protocol make_self_disabling(const Protocol& p) {
  if (!is_self_terminating(p))
    throw ModelError(cat("protocol '", p.name(),
                         "' violates Assumption 1 (a cycle of local "
                         "transitions exists); the self-disabling transform "
                         "is undefined"));
  if (is_self_disabling(p)) return p;

  // terminal[s] = the set of local deadlocks reachable from s via t-arcs
  // (s itself if s is a deadlock). Memoized DFS over the acyclic t-graph.
  std::vector<std::vector<LocalStateId>> terminal(p.num_states());
  std::vector<bool> done(p.num_states(), false);

  auto compute = [&](auto&& self, LocalStateId s) -> void {
    if (done[s]) return;
    done[s] = true;
    if (p.is_deadlock(s)) {
      terminal[s] = {s};
      return;
    }
    std::vector<LocalStateId> acc;
    for (const auto& t : p.transitions_from(s)) {
      self(self, t.to);
      acc.insert(acc.end(), terminal[t.to].begin(), terminal[t.to].end());
    }
    std::sort(acc.begin(), acc.end());
    acc.erase(std::unique(acc.begin(), acc.end()), acc.end());
    terminal[s] = std::move(acc);
  };

  std::vector<LocalTransition> delta;
  for (const auto& t : p.delta()) {
    compute(compute, t.to);
    for (LocalStateId w : terminal[t.to]) {
      RINGSTAB_ASSERT(w != t.from, "terminal state equals enabled source");
      delta.push_back({t.from, w});
    }
  }
  return p.with_delta(p.name() + "_sd", std::move(delta));
}

}  // namespace ringstab
