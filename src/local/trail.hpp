// Contiguous trails in the LTG (paper Lemma 5.12 / Theorem 5.14).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "local/ltg.hpp"

namespace ringstab {

/// One arc of a contiguous trail.
struct TrailStep {
  bool is_t = false;  // t-arc (local transition) vs s-arc (continuation)
  LocalStateId from = kInvalidLocalState;
  LocalStateId to = kInvalidLocalState;
  std::size_t t_arc_index = 0;  // into protocol().delta(), valid iff is_t
};

/// A closed contiguous trail: the LTG shadow of a contiguous livelock with
/// |E| adjacent enablements on a ring of size K = |E| + P (Lemma 5.12).
///
/// Formalization (see DESIGN.md §1): the cyclic arc pattern per round is
///   [s-arc × (|E|−1)]  ·  [t-arc, s-arc] × P
/// repeated `rounds` times, closed, with no arc repeated, and every vertex
/// inside the w1 segment enabled. For |E| = 1 this degenerates to the strict
/// t,s,t,s,… alternation of Lemma 5.12 case 1.
struct ContiguousTrail {
  int num_enabled = 0;   // |E|
  int propagation = 0;   // P = K − |E|
  int rounds = 0;
  std::vector<TrailStep> steps;

  int implied_ring_size() const { return num_enabled + propagation; }

  /// "02 —t#4→ 01 ⇢ 11 ⇢ 11 —t#2→ 10 ⇢ 02  (|E|=2, P=1, K=3)"
  std::string to_string(const Protocol& p) const;
};

/// Search configuration. Default bounds are exhaustive in P (a round's P
/// t-arcs are distinct, so P ≤ |δ_r|) and generous in |E|; the search
/// reports kInconclusive rather than kNoTrail if a bound or the node budget
/// was hit, so "no trail" verdicts are trustworthy.
struct TrailQuery {
  /// Restrict t-arcs to these delta() indices (empty = all of δ_r).
  std::vector<std::size_t> t_arc_whitelist;

  /// Theorem 5.14 condition 1: the trail must visit a ¬LC_r state.
  bool require_illegitimate = true;
  /// Theorem 5.14 condition 2: the trail's t-arcs must form pseudo-livelocks
  /// (their write projection is a union of value cycles).
  bool require_pseudo_livelock = true;

  int max_enabled = 0;      // 0 = automatic (see above)
  int max_propagation = 0;  // 0 = automatic (|δ_r|)
  std::size_t node_budget = 16'000'000;  // ~1s worst case; enough for
                                         // 3-layer products (≈4.2M nodes)

  /// ABLATION ONLY: skip the union-of-cycles static prune (see
  /// docs/theory.md §3). Verdicts are unchanged; the search just explores
  /// orders of magnitude more nodes. Exists so bench_ablation can quantify
  /// the prune.
  bool ablation_disable_cycle_prune = false;
};

enum class TrailSearchStatus {
  kNoTrail,       // exhaustive: no qualifying trail exists (within bounds
                  // that are provably sufficient or explicitly configured)
  kTrailFound,    // witness in `trail`
  kInconclusive,  // node budget exhausted before the space was covered
};

struct TrailSearchResult {
  TrailSearchStatus status = TrailSearchStatus::kNoTrail;
  std::optional<ContiguousTrail> trail;
  std::size_t nodes_explored = 0;
  int max_enabled_used = 0;
  int max_propagation_used = 0;
};

/// Find a qualifying contiguous trail, smallest (|E|, P) first.
TrailSearchResult find_contiguous_trail(const Ltg& ltg,
                                        const TrailQuery& query = {});

}  // namespace ringstab
