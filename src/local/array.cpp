#include "local/array.hpp"

#include <algorithm>

#include "core/fmt.hpp"
#include "local/rcg.hpp"

namespace ringstab {
namespace {

// Feasible deadlock states for position i of an n-array, with the "have we
// passed an illegitimate state" flag folded into the DP below.
std::vector<LocalStateId> feasible_deadlocks_at(const Protocol& p,
                                                std::size_t i, std::size_t n) {
  std::vector<LocalStateId> out;
  for (LocalStateId s = 0; s < p.num_states(); ++s)
    if (p.is_deadlock(s) && feasible_array_state(p, s, i, n))
      out.push_back(s);
  return out;
}

}  // namespace

std::vector<std::size_t> ArrayDeadlockAnalysis::deadlocked_sizes() const {
  std::vector<std::size_t> out;
  for (std::size_t n = 2; n < size_spectrum.size(); ++n)
    if (size_spectrum[n]) out.push_back(n);
  return out;
}

void validate_array_protocol(const Protocol& p) {
  if (p.domain().size() < 2)
    throw ModelError(cat("array protocol '", p.name(),
                         "' needs at least one real value besides ⊥"));
  const Value bot = boundary_value(p);
  for (const auto& t : p.delta()) {
    if (p.space().self(t.from) == bot || p.space().self(t.to) == bot)
      throw ModelError(cat("array protocol '", p.name(),
                           "': transitions must not read a ⊥ self value or "
                           "write ⊥ (the boundary is virtual)"));
  }
}

bool feasible_array_state(const Protocol& p, LocalStateId s, std::size_t i,
                          std::size_t n) {
  const auto& loc = p.locality();
  const Value bot = boundary_value(p);
  for (int off = -loc.left; off <= loc.right; ++off) {
    const long long j = static_cast<long long>(i) + off;
    const bool outside = j < 0 || j >= static_cast<long long>(n);
    if ((p.space().value(s, off) == bot) != outside) return false;
  }
  return true;
}

ArrayDeadlockAnalysis analyze_array_deadlocks(const Protocol& p,
                                              std::size_t spectrum_max_n) {
  validate_array_protocol(p);
  ArrayDeadlockAnalysis res;
  res.spectrum_max_n = spectrum_max_n;
  res.size_spectrum.assign(spectrum_max_n + 1, false);

  const Digraph rcg = build_rcg(p.space());
  const std::size_t v = p.num_states();

  // dp[s][flag]: a feasible deadlock walk reaches position i at state s,
  // having visited an illegitimate state iff flag.
  for (std::size_t n = 2; n <= spectrum_max_n; ++n) {
    std::vector<std::array<bool, 2>> dp(v, {false, false});
    for (LocalStateId s : feasible_deadlocks_at(p, 0, n))
      dp[s][p.is_legit(s) ? 0 : 1] = true;
    for (std::size_t i = 1; i < n; ++i) {
      std::vector<std::array<bool, 2>> next(v, {false, false});
      for (LocalStateId s = 0; s < v; ++s) {
        if (!dp[s][0] && !dp[s][1]) continue;
        for (VertexId t : rcg.out(s)) {
          if (!p.is_deadlock(t) || !feasible_array_state(p, t, i, n))
            continue;
          const bool illegit = !p.is_legit(t);
          if (dp[s][0]) next[t][illegit ? 1 : 0] = true;
          if (dp[s][1]) next[t][1] = true;
        }
      }
      dp = std::move(next);
    }
    for (LocalStateId s = 0; s < v; ++s)
      if (dp[s][1]) res.size_spectrum[n] = true;
  }
  res.deadlock_free_all_n = std::none_of(res.size_spectrum.begin(),
                                         res.size_spectrum.end(),
                                         [](bool b) { return b; });
  return res;
}

std::optional<std::vector<Value>> array_deadlock_witness(const Protocol& p,
                                                         std::size_t n) {
  validate_array_protocol(p);
  if (n < 2) return std::nullopt;
  const Digraph rcg = build_rcg(p.space());
  const std::size_t v = p.num_states();

  // Same DP, with parents for backtracking. Node = (state, flag).
  struct Cell {
    bool reach = false;
    LocalStateId parent = kInvalidLocalState;
    int parent_flag = 0;
  };
  std::vector<std::vector<std::array<Cell, 2>>> dp(
      n, std::vector<std::array<Cell, 2>>(v));
  for (LocalStateId s : [&] {
         std::vector<LocalStateId> out;
         for (LocalStateId t = 0; t < v; ++t)
           if (p.is_deadlock(t) && feasible_array_state(p, t, 0, n))
             out.push_back(t);
         return out;
       }())
    dp[0][s][p.is_legit(s) ? 0 : 1].reach = true;

  for (std::size_t i = 1; i < n; ++i)
    for (LocalStateId s = 0; s < v; ++s)
      for (int f = 0; f < 2; ++f) {
        if (!dp[i - 1][s][f].reach) continue;
        for (VertexId t : rcg.out(s)) {
          if (!p.is_deadlock(t) || !feasible_array_state(p, t, i, n))
            continue;
          const int nf = f | (p.is_legit(t) ? 0 : 1);
          if (dp[i][t][nf].reach) continue;
          dp[i][t][nf] = {true, s, f};
        }
      }

  for (LocalStateId end = 0; end < v; ++end) {
    if (!dp[n - 1][end][1].reach) continue;
    // Backtrack.
    std::vector<LocalStateId> walk(n);
    LocalStateId s = end;
    int f = 1;
    for (std::size_t i = n; i-- > 0;) {
      walk[i] = s;
      const Cell& c = dp[i][s][f];
      s = c.parent;
      f = c.parent_flag;
    }
    std::vector<Value> values(n);
    for (std::size_t i = 0; i < n; ++i)
      values[i] = p.space().self(walk[i]);
    // Verify: re-derive each window from the values.
    for (std::size_t i = 0; i < n; ++i) {
      const auto& loc = p.locality();
      std::vector<Value> window;
      for (int off = -loc.left; off <= loc.right; ++off) {
        const long long j = static_cast<long long>(i) + off;
        window.push_back(j < 0 || j >= static_cast<long long>(n)
                             ? boundary_value(p)
                             : values[static_cast<std::size_t>(j)]);
      }
      RINGSTAB_ASSERT(p.space().encode(window) == walk[i],
                      "array witness windows inconsistent");
    }
    return values;
  }
  return std::nullopt;
}

bool array_terminates_always(const Protocol& p) {
  if (!p.locality().is_unidirectional()) return false;
  return std::all_of(p.delta().begin(), p.delta().end(),
                     [&](const LocalTransition& t) {
                       return p.is_deadlock(t.to);
                     });
}

}  // namespace ringstab
