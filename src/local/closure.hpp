// Local check that the conjunctive invariant I is closed in the protocol.
#pragma once

#include <optional>
#include <string>

#include "core/protocol.hpp"

namespace ringstab {

/// Result of the local closure check. The check is sound: kClosed implies
/// I(K) is closed in p(K) for every K. kMaybeViolated reports a locally
/// consistent witness (mover + affected neighbor) which may or may not be
/// embeddable in a fully legitimate ring; cross-check globally if exactness
/// matters.
struct ClosureCheck {
  enum class Verdict { kClosed, kMaybeViolated };
  Verdict verdict = Verdict::kClosed;

  /// Witness (when violated): the transition whose execution corrupts LC —
  /// either its own (self_violation) or a neighbor's at `neighbor_offset`.
  std::optional<LocalTransition> witness;
  bool self_violation = false;
  int neighbor_offset = 0;

  std::string describe(const Protocol& p) const;
};

ClosureCheck check_invariant_closure(const Protocol& p);

}  // namespace ringstab
