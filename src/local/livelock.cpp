#include "local/livelock.hpp"

#include "obs/obs.hpp"

namespace ringstab {

LivelockAnalysis check_livelock_freedom(const Protocol& p,
                                        const TrailQuery& query) {
  const obs::Span span("local.livelock_analysis");
  LivelockAnalysis res;
  res.was_self_disabling = is_self_disabling(p);
  res.covers_all_livelocks = p.locality().is_unidirectional();

  const Protocol analyzed = res.was_self_disabling ? p : make_self_disabling(p);
  const Ltg ltg(analyzed);
  res.search = find_contiguous_trail(ltg, query);
  obs::counter("livelock.trail_nodes_explored").add(res.search.nodes_explored);
  if (res.search.trail) obs::counter("livelock.trails_found").add(1);
  switch (res.search.status) {
    case TrailSearchStatus::kNoTrail:
      res.verdict = LivelockAnalysis::Verdict::kLivelockFree;
      break;
    case TrailSearchStatus::kTrailFound:
      res.verdict = LivelockAnalysis::Verdict::kTrailFound;
      break;
    case TrailSearchStatus::kInconclusive:
      res.verdict = LivelockAnalysis::Verdict::kInconclusive;
      break;
  }
  return res;
}

}  // namespace ringstab
