// Pseudo-livelocks (paper Definition 5.13): repetitive write projections.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/protocol.hpp"

namespace ringstab {

/// The projection of a set of t-arcs on the writable variable: a multigraph
/// over domain values with one arc (self(from) → self(to)) per t-arc.
class WriteProjection {
 public:
  /// `t_arc_indices` index into p.delta(); an empty span means all of δ_r.
  WriteProjection(const Protocol& p, std::span<const std::size_t> t_arc_indices);

  std::size_t num_values() const { return adj_.size(); }

  /// t-arc indices projecting onto value arc a→b.
  const std::vector<std::size_t>& arcs(Value a, Value b) const;

  /// True iff value b is reachable from value a along projected arcs.
  bool reaches(Value a, Value b) const;

  /// True iff the projected arc of t-arc `idx` lies on a directed cycle of
  /// the projection.
  bool on_value_cycle(std::size_t idx) const;

  /// Paper Def. 5.13 lifted to sets: the t-arc set forms pseudo-livelocks
  /// iff every projected arc lies on a directed cycle (the projection
  /// decomposes into repetitive value sequences).
  bool forms_pseudo_livelocks() const;

  /// True iff *some* subset of the t-arcs forms a pseudo-livelock, i.e. the
  /// projected value graph has a directed cycle at all. When false, the NPL
  /// fast path of the synthesis methodology (step 4) applies: Theorem 5.14's
  /// condition 2 can never hold, so the protocol is livelock-free ∀K.
  bool has_pseudo_livelock() const;

  /// Human-readable summary, e.g. "0→1 {t#3}, 1→0 {t#7} : cycle".
  std::string describe(const Protocol& p) const;

 private:
  std::vector<std::size_t> indices_;
  // write_pair_[i] = projected (from, to) values of indices_[i]'s t-arc.
  std::vector<std::pair<Value, Value>> write_pairs_;
  // adj_[a][b] = t-arc indices with write pair (a, b).
  std::vector<std::vector<std::vector<std::size_t>>> adj_;
};

/// Enumerate the *minimal* pseudo-livelocks inside a candidate t-arc set:
/// every simple cycle of the projected value graph, expanded over the choice
/// of t-arc per value arc. Each result is a sorted list of t-arc indices.
/// Capped at `max_results`.
std::vector<std::vector<std::size_t>> minimal_pseudo_livelocks(
    const Protocol& p, std::span<const std::size_t> t_arc_indices,
    std::size_t max_results = 4096);

}  // namespace ringstab
