#include "local/convergence.hpp"

#include "core/fmt.hpp"

namespace ringstab {

ConvergenceAnalysis check_convergence(const Protocol& p,
                                      const TrailQuery& query,
                                      std::size_t spectrum_max_k) {
  ConvergenceAnalysis res;
  res.deadlocks = analyze_deadlocks(p, spectrum_max_k);
  if (!res.deadlocks.deadlock_free_all_k) {
    res.verdict = ConvergenceAnalysis::Verdict::kDeadlock;
    return res;
  }
  res.livelocks = check_livelock_freedom(p, query);
  switch (res.livelocks.verdict) {
    case LivelockAnalysis::Verdict::kLivelockFree:
      res.verdict = ConvergenceAnalysis::Verdict::kConverges;
      break;
    case LivelockAnalysis::Verdict::kTrailFound:
      res.verdict = ConvergenceAnalysis::Verdict::kTrailFound;
      break;
    case LivelockAnalysis::Verdict::kInconclusive:
      res.verdict = ConvergenceAnalysis::Verdict::kInconclusive;
      break;
  }
  return res;
}

std::string ConvergenceAnalysis::summary(const Protocol& p) const {
  std::ostringstream os;
  os << "protocol " << p.name() << ": ";
  switch (verdict) {
    case Verdict::kConverges:
      os << "strongly converges to I for every ring size K";
      if (!livelocks.covers_all_livelocks)
        os << " (livelock-freedom certified for contiguous livelocks only: "
              "bidirectional ring)";
      break;
    case Verdict::kDeadlock:
      os << "has global deadlocks outside I; smallest deadlocked K = "
         << deadlocks.size_spectrum.smallest() << ", " << deadlocks.bad_cycles.size()
         << " bad cycle(s) in the deadlock RCG";
      break;
    case Verdict::kTrailFound:
      os << "deadlock-free for every K, but a contiguous trail exists "
            "(|E|="
         << livelocks.trail()->num_enabled
         << ", K=" << livelocks.trail()->implied_ring_size()
         << "): livelock-freedom cannot be certified locally";
      break;
    case Verdict::kInconclusive:
      os << "analysis inconclusive (trail search budget exhausted)";
      break;
  }
  return os.str();
}

}  // namespace ringstab
