// Theorem 4.2: deadlock-freedom of parameterized rings, decided locally.
#pragma once

#include <optional>

#include "core/protocol.hpp"
#include "graph/cycles.hpp"
#include "graph/walks.hpp"

namespace ringstab {

/// Full deadlock analysis of a parameterized ring protocol. The verdict is
/// exact for every ring size K (Theorem 4.2); when deadlocks exist, the
/// analysis also reports *which* sizes are affected (the closed-walk length
/// spectrum of the bad cycle structure) and can construct witness rings.
struct DeadlockAnalysis {
  /// Theorem 4.2 verdict: no directed cycle through an illegitimate local
  /// deadlock in the deadlock-induced RCG ⟺ deadlock-free outside I(K) ∀K.
  bool deadlock_free_all_k = false;

  std::vector<LocalStateId> local_deadlocks;
  std::vector<LocalStateId> illegitimate_deadlocks;

  /// Simple cycles through illegitimate deadlocks (empty iff free). Capped.
  std::vector<Cycle> bad_cycles;

  /// feasible[K] ⇒ a globally deadlocked ring of size K outside I exists
  /// (exact for K ≥ window size; computed up to `spectrum_max_k`).
  WalkSpectrum size_spectrum;
  std::size_t spectrum_max_k = 0;

  /// Deadlocked ring sizes in [window, spectrum_max_k], ascending.
  std::vector<std::size_t> deadlocked_sizes() const;
};

DeadlockAnalysis analyze_deadlocks(const Protocol& p,
                                   std::size_t spectrum_max_k = 64,
                                   std::size_t max_cycles = 64);

/// Construct a globally deadlocked ring of size K outside I, as the value
/// assignment x_0..x_{K-1}, or nullopt if none exists (or K < window, where
/// the walk construction does not apply). The returned assignment is
/// verified: every process is locally deadlocked and at least one violates
/// LC_r.
std::optional<std::vector<Value>> deadlock_witness_ring(const Protocol& p,
                                                        std::size_t k);

}  // namespace ringstab
