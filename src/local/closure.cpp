#include "local/closure.hpp"

#include "core/fmt.hpp"

namespace ringstab {
namespace {

// Enumerate the local states u of the process at ring distance `dist` from
// P_r (positive = successor side) that are consistent with P_r being in
// state s, and call fn(u). Offsets of u at position k correspond to P_r
// offsets k + dist; out-of-window offsets are unconstrained.
template <typename Fn>
void for_each_neighbor_state(const LocalStateSpace& space, LocalStateId s,
                             int dist, Fn&& fn) {
  const auto& loc = space.locality();
  std::vector<int> free_offsets;
  const std::size_t d = space.domain().size();
  std::vector<Value> window(static_cast<std::size_t>(loc.window()), 0);
  for (int k = -loc.left; k <= loc.right; ++k) {
    const int rk = k + dist;  // this offset of the neighbor, seen from P_r
    if (rk >= -loc.left && rk <= loc.right) {
      window[static_cast<std::size_t>(k + loc.left)] = space.value(s, rk);
    } else {
      free_offsets.push_back(k);
    }
  }
  // Enumerate assignments of the free offsets.
  std::vector<std::size_t> idx(free_offsets.size(), 0);
  while (true) {
    for (std::size_t i = 0; i < free_offsets.size(); ++i)
      window[static_cast<std::size_t>(free_offsets[i] + loc.left)] =
          static_cast<Value>(idx[i]);
    fn(space.encode(window));
    std::size_t i = 0;
    for (; i < free_offsets.size(); ++i) {
      if (++idx[i] < d) break;
      idx[i] = 0;
    }
    if (i == free_offsets.size()) break;
  }
}

}  // namespace

ClosureCheck check_invariant_closure(const Protocol& p) {
  const auto& space = p.space();
  const auto& loc = p.locality();
  ClosureCheck res;

  for (const auto& t : p.delta()) {
    if (!p.is_legit(t.from)) continue;
    if (!p.is_legit(t.to)) {
      res.verdict = ClosureCheck::Verdict::kMaybeViolated;
      res.witness = t;
      res.self_violation = true;
      return res;
    }
    // The write to x_r is visible to P_{r+j} (j in 1..left, at its offset
    // -j) and to P_{r-j} (j in 1..right, at its offset +j). Check that no
    // legitimate neighbor state becomes illegitimate.
    const Value new_self = space.self(t.to);
    for (int j = 1; j <= loc.left; ++j) {
      bool bad = false;
      for_each_neighbor_state(space, t.from, j, [&](LocalStateId u) {
        if (!p.is_legit(u)) return;
        if (!p.is_legit(space.with_value(u, -j, new_self))) bad = true;
      });
      if (bad) {
        res.verdict = ClosureCheck::Verdict::kMaybeViolated;
        res.witness = t;
        res.neighbor_offset = j;
        return res;
      }
    }
    for (int j = 1; j <= loc.right; ++j) {
      bool bad = false;
      for_each_neighbor_state(space, t.from, -j, [&](LocalStateId u) {
        if (!p.is_legit(u)) return;
        if (!p.is_legit(space.with_value(u, j, new_self))) bad = true;
      });
      if (bad) {
        res.verdict = ClosureCheck::Verdict::kMaybeViolated;
        res.witness = t;
        res.neighbor_offset = -j;
        return res;
      }
    }
  }
  return res;
}

std::string ClosureCheck::describe(const Protocol& p) const {
  if (verdict == Verdict::kClosed)
    return cat("I is closed in ", p.name(), " (locally certified)");
  std::ostringstream os;
  os << "possible closure violation in " << p.name() << ": transition ⟨"
     << p.space().brief(witness->from) << "⟩→⟨" << p.space().brief(witness->to)
     << "⟩ ";
  if (self_violation)
    os << "leaves LC_r";
  else
    os << "can corrupt the neighbor at ring distance " << neighbor_offset;
  return os.str();
}

}  // namespace ringstab
