// Livelock-induced precedence relation and schedule permutations
// (paper Definition 5.10, Lemma 5.11, Example 5.2).
#pragma once

#include <optional>
#include <vector>

#include "core/protocol.hpp"

namespace ringstab {

/// One step of a concrete schedule on a ring of size K: process `process`
/// fires local transition `transition` (its window must match
/// transition.from at execution time).
struct ScheduledStep {
  std::size_t process = 0;
  LocalTransition transition;

  bool operator==(const ScheduledStep&) const = default;
};

using Schedule = std::vector<ScheduledStep>;

/// Local state of process i in a concrete ring valuation.
LocalStateId local_state_of(const Protocol& p, const std::vector<Value>& ring,
                            std::size_t i);

/// Apply one step in place; false (ring untouched) if the step is not
/// enabled exactly as scheduled.
bool apply_step(const Protocol& p, std::vector<Value>& ring,
                const ScheduledStep& step);

/// Execute a schedule from `start`; returns the state sequence
/// (start included, length |schedule|+1), or nullopt if some step misfires.
std::optional<std::vector<std::vector<Value>>> execute_schedule(
    const Protocol& p, std::vector<Value> start, const Schedule& schedule);

/// True iff the schedule executes from `start` and returns to `start`
/// (i.e. it is one period of a livelock) — and, if `outside` is given, every
/// visited state satisfies ¬I.
bool is_livelock_schedule(const Protocol& p, const std::vector<Value>& start,
                          const Schedule& schedule);

/// The precedence relation ≺ of Definition 5.10 over the steps of one
/// livelock period, computed from locality-based dependence: steps of
/// processes whose localities overlap are ordered as in the schedule;
/// independent steps are unordered. `precedes` is the transitive closure.
struct PrecedenceRelation {
  std::size_t size = 0;
  std::vector<std::vector<bool>> precedes;

  bool independent(std::size_t a, std::size_t b) const {
    return !precedes[a][b] && !precedes[b][a];
  }
  /// Unordered pairs {a, b}, a < b, with neither a ≺ b nor b ≺ a.
  std::vector<std::pair<std::size_t, std::size_t>> independent_pairs() const;
};

PrecedenceRelation livelock_precedence(const Protocol& p, std::size_t ring_size,
                                       const Schedule& schedule);

/// Number of precedence-preserving permutations with the first step fixed
/// (the paper fixes the "starting" transition to quotient out rotations).
/// Bitmask DP; throws CapacityError for schedules longer than 24 steps.
std::size_t count_linear_extensions(const PrecedenceRelation& rel,
                                    bool fix_first = true);

/// Enumerate the precedence-preserving permutations themselves (as
/// schedules), first step fixed, capped at `max_results`. By Lemma 5.11
/// every returned schedule is again a livelock period; this is re-verified
/// by execution and violations trigger an internal error.
std::vector<Schedule> precedence_preserving_schedules(
    const Protocol& p, const std::vector<Value>& start,
    const Schedule& schedule, std::size_t max_results = 1024);

}  // namespace ringstab
