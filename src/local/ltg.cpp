#include "local/ltg.hpp"

#include <sstream>

#include "core/fmt.hpp"
#include "local/rcg.hpp"
#include "obs/obs.hpp"

namespace ringstab {

Ltg::Ltg(Protocol protocol)
    : protocol_(std::move(protocol)), s_arcs_(build_rcg(protocol_.space())) {
  obs::counter("ltg.t_arcs").add(protocol_.delta().size());
}

std::size_t Ltg::s_arc_id(LocalStateId u, LocalStateId v) const {
  RINGSTAB_ASSERT(space().right_continues(u, v), "not an s-arc");
  const Value top = space().value(v, space().locality().right);
  return static_cast<std::size_t>(u) * protocol_.domain().size() + top;
}

std::string Ltg::to_dot(bool include_s_arcs) const {
  const auto& space = protocol_.space();
  std::ostringstream os;
  os << "digraph ltg_" << protocol_.name() << " {\n";
  for (LocalStateId s = 0; s < num_states(); ++s) {
    os << "  n" << s << " [label=\"" << space.brief(s) << "\""
       << (protocol_.is_legit(s) ? ",style=filled,fillcolor=lightgray" : "")
       << (protocol_.is_deadlock(s) ? ",shape=box" : ",shape=ellipse")
       << "];\n";
  }
  for (const auto& t : protocol_.delta())
    os << "  n" << t.from << " -> n" << t.to << " [color=black,penwidth=2];\n";
  if (include_s_arcs) {
    for (LocalStateId u = 0; u < num_states(); ++u)
      for (VertexId v : s_arcs_.out(u))
        os << "  n" << u << " -> n" << v << " [style=dashed,color=gray];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace ringstab
