#include "local/rcg.hpp"

#include "obs/obs.hpp"

namespace ringstab {

Digraph build_rcg(const LocalStateSpace& space) {
  const obs::Span span("local.build_rcg");
  Digraph g(space.size());
  std::uint64_t arcs = 0;
  for (LocalStateId u = 0; u < space.size(); ++u)
    for (LocalStateId v : space.right_continuations(u)) {
      g.add_arc(u, v);
      ++arcs;
    }
  obs::counter("rcg.arcs").add(arcs);
  return g;
}

Digraph deadlock_rcg(const Protocol& p) {
  const obs::Span span("local.deadlock_rcg");
  std::vector<bool> keep(p.num_states());
  for (LocalStateId s = 0; s < p.num_states(); ++s)
    keep[s] = p.is_deadlock(s);
  return build_rcg(p.space()).induced(keep);
}

Digraph deadlock_rcg_excluding(const Protocol& p,
                               const std::vector<bool>& excluded) {
  RINGSTAB_ASSERT(excluded.size() == p.num_states(),
                  "exclusion mask size mismatch");
  std::vector<bool> keep(p.num_states());
  for (LocalStateId s = 0; s < p.num_states(); ++s)
    keep[s] = p.is_deadlock(s) && !excluded[s];
  return build_rcg(p.space()).induced(keep);
}

}  // namespace ringstab
