// Combined local verdict on strong convergence (Proposition 2.1).
#pragma once

#include <string>

#include "local/deadlock.hpp"
#include "local/livelock.hpp"

namespace ringstab {

/// Strong convergence = deadlock-freedom + livelock-freedom outside I
/// (Proposition 2.1), both decided in the local state space.
struct ConvergenceAnalysis {
  enum class Verdict {
    kConverges,      // deadlock-free ∀K (exact) and livelock-free ∀K (via
                     // Theorem 5.14's sufficient condition)
    kDeadlock,       // Theorem 4.2 found a bad cycle: deadlocks exist
    kTrailFound,     // deadlock-free, but a qualifying trail exists: the
                     // local method cannot certify livelock-freedom
    kInconclusive,   // livelock search budget exhausted
  };

  Verdict verdict = Verdict::kInconclusive;
  DeadlockAnalysis deadlocks;
  LivelockAnalysis livelocks;

  std::string summary(const Protocol& p) const;
};

ConvergenceAnalysis check_convergence(const Protocol& p,
                                      const TrailQuery& query = {},
                                      std::size_t spectrum_max_k = 64);

}  // namespace ringstab
