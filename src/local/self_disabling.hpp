// Assumptions 1 and 2 of Section 5: self-termination and self-disablement.
#pragma once

#include "core/protocol.hpp"

namespace ringstab {

/// Assumption 2: every local transition disables its own process (its
/// target local state is a local deadlock).
bool is_self_disabling(const Protocol& p);

/// Assumption 1: every sequence of local transitions terminates (the
/// t-arc graph over local states is acyclic).
bool is_self_terminating(const Protocol& p);

/// The paper's transformation making a protocol self-disabling without
/// adding deadlocks or livelocks in ¬I: each transition whose target is
/// still enabled is replaced by transitions to every terminal local deadlock
/// reachable from that target. Throws ModelError if the protocol is not
/// self-terminating (a local t-arc cycle), where the transformation is
/// undefined.
Protocol make_self_disabling(const Protocol& p);

}  // namespace ringstab
