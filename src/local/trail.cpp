#include "local/trail.hpp"

#include <algorithm>

#include "core/fmt.hpp"
#include "local/pseudo_livelock.hpp"

namespace ringstab {
namespace {

class TrailSearch {
 public:
  TrailSearch(const Ltg& ltg, const TrailQuery& q) : ltg_(ltg), q_(q) {
    const Protocol& p = ltg.protocol();
    allowed_t_.assign(p.delta().size(), q.t_arc_whitelist.empty());
    for (std::size_t idx : q.t_arc_whitelist) {
      RINGSTAB_ASSERT(idx < p.delta().size(), "t-arc index out of range");
      allowed_t_[idx] = true;
    }

    // Static prune (sound when condition 2 applies): a qualifying trail's
    // t-arc set is a union of projected value cycles, hence contained in
    // the maximal union-of-cycles subset of the allowed arcs — computed as
    // a fixpoint (dropping an arc can break other arcs' cycles).
    if (q.require_pseudo_livelock && !q.ablation_disable_cycle_prune) {
      bool changed = true;
      while (changed) {
        changed = false;
        std::vector<std::size_t> live;
        for (std::size_t i = 0; i < allowed_t_.size(); ++i)
          if (allowed_t_[i]) live.push_back(i);
        if (live.empty()) break;
        const WriteProjection proj(p, live);
        for (std::size_t i : live)
          if (!proj.on_value_cycle(i)) {
            allowed_t_[i] = false;
            changed = true;
          }
      }
    }

    enabled_.assign(p.num_states(), false);
    num_enabled_states_ = 0;
    for (std::size_t i = 0; i < p.delta().size(); ++i)
      if (allowed_t_[i]) enabled_[p.delta()[i].from] = true;
    for (bool b : enabled_)
      if (b) ++num_enabled_states_;
  }

  TrailSearchResult run() {
    TrailSearchResult res;
    const Protocol& p = ltg_.protocol();
    const std::size_t num_allowed = static_cast<std::size_t>(
        std::count(allowed_t_.begin(), allowed_t_.end(), true));
    if (num_allowed == 0) return res;  // no t-arcs → no trail

    // P t-arcs per round are distinct, so P ≤ |allowed t-arcs| is exhaustive.
    const int max_p = q_.max_propagation > 0
                          ? q_.max_propagation
                          : static_cast<int>(num_allowed);
    // |E|−1 s-arcs per round lie between enabled states, all distinct, so
    // |E| ≤ (#enabled · |D|) + 1 is exhaustive.
    const int max_e =
        q_.max_enabled > 0
            ? q_.max_enabled
            : static_cast<int>(num_enabled_states_ * p.domain().size()) + 1;
    res.max_enabled_used = max_e;
    res.max_propagation_used = max_p;

    used_t_.assign(p.delta().size(), false);
    used_s_.assign(ltg_.num_s_arc_ids(), false);
    budget_ = q_.node_budget;
    budget_hit_ = false;

    for (int e = 1; e <= max_e && !res.trail; ++e) {
      for (int pp = 1; pp <= max_p && !res.trail; ++pp) {
        e_ = e;
        p_ = pp;
        round_len_ = (e - 1) + 2 * pp;
        for (LocalStateId start = 0; start < p.num_states() && !res.trail;
             ++start) {
          if (!enabled_[start]) continue;
          start_ = start;
          steps_.clear();
          if (dfs(start, 0)) {
            ContiguousTrail trail;
            trail.num_enabled = e;
            trail.propagation = pp;
            trail.rounds =
                static_cast<int>(steps_.size()) / round_len_;
            trail.steps = steps_;
            res.trail = std::move(trail);
            res.status = TrailSearchStatus::kTrailFound;
          }
        }
      }
    }
    res.nodes_explored = q_.node_budget - budget_;
    if (!res.trail)
      res.status = budget_hit_ ? TrailSearchStatus::kInconclusive
                               : TrailSearchStatus::kNoTrail;
    return res;
  }

 private:
  // DFS over (current vertex, phase within round). Returns true when a
  // qualifying closed trail is stored in steps_.
  bool dfs(LocalStateId v, int phase) {
    if (budget_ == 0) {
      budget_hit_ = true;
      return false;
    }
    --budget_;

    if (phase == 0 && !steps_.empty() && v == start_ && qualifies()) {
      return true;
    }

    const Protocol& p = ltg_.protocol();
    const bool in_w1 = phase < e_ - 1;
    const bool t_phase = !in_w1 && ((phase - (e_ - 1)) % 2 == 0);
    const int next_phase = (phase + 1) % round_len_;

    if (t_phase) {
      for (const auto& t : p.transitions_from(v)) {
        const std::size_t idx = p.index_of(t);
        if (!allowed_t_[idx] || used_t_[idx]) continue;
        used_t_[idx] = true;
        steps_.push_back({true, v, t.to, idx});
        if (dfs(t.to, next_phase)) return true;
        steps_.pop_back();
        used_t_[idx] = false;
      }
    } else {
      // s-arc. Inside w1 the source must be an enabled state (it is part of
      // the contiguous segment of enablements).
      if (in_w1 && !enabled_[v]) return false;
      for (VertexId w : ltg_.s_arcs().out(v)) {
        // The w1 segment consists of enabled states; the state entering a
        // t-phase must be enabled too (enforced by t-arc availability).
        if (in_w1 && !enabled_[w]) continue;
        const std::size_t sid = ltg_.s_arc_id(v, w);
        if (used_s_[sid]) continue;
        used_s_[sid] = true;
        steps_.push_back({false, v, w, 0});
        if (dfs(w, next_phase)) return true;
        steps_.pop_back();
        used_s_[sid] = false;
      }
    }
    return false;
  }

  // Closure conditions of Theorem 5.14 on the candidate closed trail.
  bool qualifies() const {
    const Protocol& p = ltg_.protocol();
    // Lemma 5.12: every vertex of the w1 segment (a stalled enablement) has
    // an outgoing t-arc *in the trail* — in a contiguous livelock each
    // stalled enablement eventually propagates. Vertices at phases < |E|-1
    // are the w1 sources; the segment's last vertex fires the next t-arc by
    // construction.
    if (e_ > 1) {
      std::vector<bool> fires(p.num_states(), false);
      for (const auto& s : steps_)
        if (s.is_t) fires[s.from] = true;
      for (std::size_t i = 0; i < steps_.size(); ++i) {
        const int phase = static_cast<int>(i % static_cast<std::size_t>(round_len_));
        if (phase < e_ - 1 && !fires[steps_[i].from]) return false;
      }
    }
    if (q_.require_illegitimate) {
      const bool illegit =
          std::any_of(steps_.begin(), steps_.end(), [&](const TrailStep& s) {
            return !p.is_legit(s.from) || !p.is_legit(s.to);
          });
      if (!illegit) return false;
    }
    if (q_.require_pseudo_livelock) {
      std::vector<std::size_t> tarcs;
      for (const auto& s : steps_)
        if (s.is_t) tarcs.push_back(s.t_arc_index);
      std::sort(tarcs.begin(), tarcs.end());
      tarcs.erase(std::unique(tarcs.begin(), tarcs.end()), tarcs.end());
      if (!WriteProjection(p, tarcs).forms_pseudo_livelocks()) return false;
    }
    return true;
  }

  const Ltg& ltg_;
  const TrailQuery& q_;
  std::vector<bool> allowed_t_;
  std::vector<bool> enabled_;
  std::size_t num_enabled_states_ = 0;

  int e_ = 1, p_ = 1, round_len_ = 2;
  LocalStateId start_ = 0;
  std::vector<bool> used_t_, used_s_;
  std::vector<TrailStep> steps_;
  std::size_t budget_ = 0;
  bool budget_hit_ = false;
};

}  // namespace

std::string ContiguousTrail::to_string(const Protocol& p) const {
  const auto& space = p.space();
  std::ostringstream os;
  if (!steps.empty()) os << space.brief(steps.front().from);
  for (const auto& s : steps) {
    if (s.is_t)
      os << " —t#" << s.t_arc_index << "→ " << space.brief(s.to);
    else
      os << " ⇢ " << space.brief(s.to);
  }
  os << "  (|E|=" << num_enabled << ", P=" << propagation
     << ", K=" << implied_ring_size() << ", rounds=" << rounds << ")";
  return os.str();
}

TrailSearchResult find_contiguous_trail(const Ltg& ltg,
                                        const TrailQuery& query) {
  return TrailSearch(ltg, query).run();
}

}  // namespace ringstab
