#include "local/deadlock.hpp"

#include <algorithm>

#include "graph/scc.hpp"
#include "local/rcg.hpp"
#include "obs/obs.hpp"

namespace ringstab {

std::vector<std::size_t> DeadlockAnalysis::deadlocked_sizes() const {
  std::vector<std::size_t> out;
  for (std::size_t k = 1; k < size_spectrum.feasible.size(); ++k)
    if (size_spectrum.feasible[k]) out.push_back(k);
  return out;
}

DeadlockAnalysis analyze_deadlocks(const Protocol& p,
                                   std::size_t spectrum_max_k,
                                   std::size_t max_cycles) {
  const obs::Span span("local.deadlock_analysis");
  DeadlockAnalysis res;
  res.local_deadlocks = p.local_deadlocks();
  res.illegitimate_deadlocks = p.illegitimate_deadlocks();
  res.spectrum_max_k = spectrum_max_k;

  const Digraph g = deadlock_rcg(p);
  std::vector<bool> marked(p.num_states(), false);
  for (LocalStateId s : res.illegitimate_deadlocks) marked[s] = true;

  res.deadlock_free_all_k = !any_marked_on_cycle(g, marked);
  if (res.deadlock_free_all_k) {
    res.size_spectrum.feasible.assign(spectrum_max_k + 1, false);
    return res;
  }
  res.bad_cycles = simple_cycles_through(g, marked, max_cycles);
  obs::counter("deadlock.bad_cycles").add(res.bad_cycles.size());
  res.size_spectrum = closed_walk_lengths(g, marked, spectrum_max_k);
  return res;
}

std::optional<std::vector<Value>> deadlock_witness_ring(const Protocol& p,
                                                        std::size_t k) {
  const auto& space = p.space();
  if (k < static_cast<std::size_t>(space.locality().window()))
    return std::nullopt;

  const Digraph g = deadlock_rcg(p);
  std::vector<bool> marked(p.num_states(), false);
  for (LocalStateId s : p.illegitimate_deadlocks()) marked[s] = true;

  auto walk = closed_walk_of_length(g, marked, k);
  if (!walk) return std::nullopt;

  // Process i takes local state walk[i]; its own variable is the walk
  // state's offset-0 value. Chained continuation guarantees consistency for
  // k ≥ window (verified below anyway).
  std::vector<Value> ring(k);
  for (std::size_t i = 0; i < k; ++i) ring[i] = space.self((*walk)[i]);

  // Verification: each process's window must match its walk state, be a
  // local deadlock, and at least one process must violate LC_r.
  bool some_illegit = false;
  for (std::size_t i = 0; i < k; ++i) {
    const int left = space.locality().left;
    const int right = space.locality().right;
    std::vector<Value> window;
    window.reserve(static_cast<std::size_t>(space.locality().window()));
    for (int off = -left; off <= right; ++off) {
      const std::size_t j =
          (i + static_cast<std::size_t>(off + static_cast<int>(k))) % k;
      window.push_back(ring[j]);
    }
    const LocalStateId s = space.encode(window);
    if (s != (*walk)[i]) return std::nullopt;  // wrap inconsistency (k small)
    RINGSTAB_ASSERT(p.is_deadlock(s), "witness process is not deadlocked");
    if (!p.is_legit(s)) some_illegit = true;
  }
  RINGSTAB_ASSERT(some_illegit, "witness ring lies inside I");
  return ring;
}

}  // namespace ringstab
