#include "synthesis/candidates.hpp"

#include <algorithm>

#include "graph/feedback.hpp"
#include "local/rcg.hpp"

namespace ringstab {

std::vector<std::vector<LocalStateId>> enumerate_resolve_sets(
    const Protocol& p, std::size_t max_sets) {
  const Digraph g = deadlock_rcg(p);
  std::vector<bool> marked(p.num_states(), false);
  std::vector<bool> candidates(p.num_states(), false);
  for (LocalStateId s : p.illegitimate_deadlocks())
    marked[s] = candidates[s] = true;
  auto sets = minimal_feedback_sets(g, marked, candidates, max_sets);
  std::vector<std::vector<LocalStateId>> out;
  out.reserve(sets.size());
  for (auto& s : sets) out.emplace_back(s.begin(), s.end());
  return out;
}

std::vector<LocalTransition> candidate_transitions(const Protocol& p,
                                                   LocalStateId s) {
  const auto& space = p.space();
  std::vector<LocalTransition> out;
  for (Value v = 0; v < space.domain().size(); ++v) {
    if (v == space.self(s)) continue;
    const LocalStateId target = space.with_self(s, v);
    // Writing into a state the input protocol already fires from would be
    // rewritten away by the self-disabling transformation anyway — skip the
    // redundant candidate. Targets inside the Resolve set stay in the
    // stream: combinations that chain resolved states into a t-arc cycle
    // (an Assumption 1 violation) are the lint pre-filter's job to discard
    // (RS002, SynthesisOptions::reject_ill_formed), not the enumerator's.
    if (p.is_enabled(target)) continue;
    out.push_back({s, target});
  }
  return out;
}

std::vector<std::vector<LocalTransition>> enumerate_candidate_sets(
    const Protocol& p, const std::vector<LocalStateId>& resolve,
    std::size_t max_sets) {
  std::vector<std::vector<LocalTransition>> per_state;
  per_state.reserve(resolve.size());
  for (LocalStateId s : resolve) {
    auto cands = candidate_transitions(p, s);
    if (cands.empty()) return {};  // this Resolve set cannot be realized
    per_state.push_back(std::move(cands));
  }

  std::vector<std::vector<LocalTransition>> out;
  if (per_state.empty()) {
    out.push_back({});  // already deadlock-free: the empty addition
    return out;
  }
  std::vector<std::size_t> pick(per_state.size(), 0);
  while (out.size() < max_sets) {
    std::vector<LocalTransition> set;
    set.reserve(per_state.size());
    for (std::size_t i = 0; i < per_state.size(); ++i)
      set.push_back(per_state[i][pick[i]]);
    out.push_back(std::move(set));
    std::size_t i = 0;
    for (; i < per_state.size(); ++i) {
      if (++pick[i] < per_state[i].size()) break;
      pick[i] = 0;
    }
    if (i == per_state.size()) break;
  }
  return out;
}

}  // namespace ringstab
