#include "synthesis/portfolio.hpp"

#include <algorithm>
#include <utility>

#include "core/protocol.hpp"

namespace ringstab {

std::string memo_key_npl(const Protocol& p) {
  std::vector<std::pair<Value, Value>> pairs;
  pairs.reserve(p.delta().size());
  for (const LocalTransition& t : p.delta())
    pairs.emplace_back(p.space().self(t.from), p.space().self(t.to));
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  std::string key;
  key.reserve(1 + 8 * 2 + 2 * pairs.size());
  key.push_back('N');
  memo_append_u64(key, p.domain().size());
  memo_append_u64(key, pairs.size());
  for (const auto& [a, b] : pairs) {
    key.push_back(static_cast<char>(a));
    key.push_back(static_cast<char>(b));
  }
  return key;
}

std::string memo_key_protocol(char kind, const Protocol& p) {
  std::string key;
  key.reserve(1 + 8 * 4 + p.num_states() / 8 + 8 * p.delta().size());
  key.push_back(kind);
  memo_append_u64(key, p.num_states());
  memo_append_u64(key, p.domain().size());
  memo_append_u32(key, static_cast<std::uint32_t>(p.locality().left));
  memo_append_u32(key, static_cast<std::uint32_t>(p.locality().right));
  memo_append_bits(key, p.legit_mask());
  memo_append_u64(key, p.delta().size());
  for (const LocalTransition& t : p.delta()) {
    memo_append_u32(key, t.from);
    memo_append_u32(key, t.to);
  }
  return key;
}

void memo_append_query(std::string& key, const TrailQuery& query) {
  memo_append_u64(key, query.t_arc_whitelist.size());
  for (std::size_t idx : query.t_arc_whitelist) memo_append_u64(key, idx);
  key.push_back(query.require_illegitimate ? 1 : 0);
  key.push_back(query.require_pseudo_livelock ? 1 : 0);
  memo_append_u32(key, static_cast<std::uint32_t>(query.max_enabled));
  memo_append_u32(key, static_cast<std::uint32_t>(query.max_propagation));
  memo_append_u64(key, query.node_budget);
  key.push_back(query.ablation_disable_cycle_prune ? 1 : 0);
}

}  // namespace ringstab
