// Parallel candidate-portfolio execution with verdict memoization — the
// shared engine behind all three synthesizers (DESIGN.md §10,
// docs/synthesis.md §5).
//
// Execution model. A synthesis run examines a list of candidate revisions;
// each candidate's verdict (NPL fast path, trail search, fixed-K model
// checking) is a pure function of (input protocol, candidate), so verdicts
// may be computed on any lane in any order. run_portfolio() fans the
// candidate list out over the process-wide thread pool at one candidate per
// chunk (deterministic partition, dynamic lane assignment), parks each
// verdict in its candidate's slot, and then merges the slots in ascending
// candidate order on the caller — reproducing the serial examination order,
// and therefore the accepted-solution order, bit for bit at any thread
// count.
//
// Cooperative early exit. Accepting synthesizers stop at a solution quota.
// Lanes bump an atomic claim counter per provisional acceptance; once the
// claims reach the quota, remaining lanes skip their candidates outright
// (no wasted trail searches — the ascending merge would discard those
// verdicts anyway). Because the chunk cursor hands candidates out in
// roughly ascending order, a skipped candidate is almost never one the
// merge still needs; when it is (quota claimed by higher-index candidates
// first), the merge recomputes it inline, keeping results exact.
//
// Memoization. Candidates overlap: revisions sharing a write-projection
// signature share the NPL verdict, revisions self-disabling to the same
// transition set share the entire trail-search outcome, and repeated
// synthesis calls over a protocol corpus repeat whole verdicts. VerdictMemo
// is a lock-sharded exact-key table for these verdicts; since every cached
// verdict is a pure function of its key, memo hits cannot change results —
// only skip recomputation.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "local/trail.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace ringstab {

/// One cached verdict. Which fields are meaningful depends on the key kind
/// (see the key builders below); unused fields stay defaulted.
struct CachedVerdict {
  bool flag = false;           // NPL: has a pseudo-livelock; global/array: ok
  std::uint8_t status = 0;     // trail: CandidateReport::Status as int
  std::uint64_t amount = 0;    // global: states explored by the K sweep
  std::optional<ContiguousTrail> trail;     // trail: rejection witness
  std::optional<int> realization;           // trail: TrailRealization as int
};

/// Lock-sharded memo table mapping explicit byte-string keys to verdicts.
/// Keys carry the *complete* input of the cached computation (a one-byte
/// kind tag plus every protocol/query field the verdict depends on), and
/// lookups compare full keys — a hit can never be a hash collision. Safe to
/// share across threads, synthesis calls, and distinct input protocols;
/// counters `synth.memo_hits` / `synth.memo_misses` record traffic (these
/// count *work*, not results, so they are schedule-dependent — see
/// docs/synthesis.md §6).
class VerdictMemo {
 public:
  VerdictMemo()
      : hits_(obs::counter("synth.memo_hits", /*approx=*/true)),
        misses_(obs::counter("synth.memo_misses", /*approx=*/true)),
        lookup_ns_(obs::histogram("synth.memo_lookup_ns")) {}

  std::optional<CachedVerdict> get(const std::string& key) const {
    if (!obs::enabled()) return get_untimed(key);
    const obs::Ticks t0 = obs::now();
    auto v = get_untimed(key);
    lookup_ns_.record(obs::now() - t0);
    return v;
  }

  /// First write wins; verdicts are pure functions of the key, so a racing
  /// duplicate insert carries the identical value.
  void put(const std::string& key, CachedVerdict v) const {
    Shard& s = shard(key);
    std::lock_guard lock(s.mu);
    s.map.emplace(key, std::move(v));
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      std::lock_guard lock(s.mu);
      n += s.map.size();
    }
    return n;
  }

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, CachedVerdict> map;
  };
  Shard& shard(const std::string& key) const {
    return shards_[std::hash<std::string>{}(key) % kShards];
  }

  std::optional<CachedVerdict> get_untimed(const std::string& key) const {
    Shard& s = shard(key);
    std::lock_guard lock(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end()) {
      misses_.add(1);
      return std::nullopt;
    }
    hits_.add(1);
    return it->second;
  }

  obs::Counter& hits_;    // registry references live for the process
  obs::Counter& misses_;  // lifetime; cached to keep get() mutex-light
  obs::Histogram& lookup_ns_;  // memo lookup latency (hit + miss)
  mutable Shard shards_[kShards];
};

/// Key-building helpers: fixed-width little-endian appends, so keys are
/// unambiguous byte strings.
inline void memo_append_u64(std::string& key, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) key.push_back(static_cast<char>(v >> (8 * i)));
}
inline void memo_append_u32(std::string& key, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) key.push_back(static_cast<char>(v >> (8 * i)));
}
inline void memo_append_bits(std::string& key, const std::vector<bool>& bits) {
  memo_append_u64(key, bits.size());
  char acc = 0;
  int n = 0;
  for (bool b : bits) {
    acc = static_cast<char>(acc | (b ? 1 : 0) << n);
    if (++n == 8) {
      key.push_back(acc);
      acc = 0;
      n = 0;
    }
  }
  if (n != 0) key.push_back(acc);
}

/// NPL fast-path key (kind 'N'). has_pseudo_livelock() asks only whether
/// the projected value graph of δ_r has a directed cycle, which depends on
/// nothing but the domain size and the *set* of projected write pairs
/// (self(from) → self(to)) — so candidates whose additions project onto the
/// same value arcs share this key, the sharing the issue's "write-projection
/// signature" names.
std::string memo_key_npl(const Protocol& p);

/// Full-protocol key (kind tag + dims + legit mask + δ_r), the conservative
/// identity used when a verdict depends on the protocol's entire structure.
/// Trail-search entries ('T') build it from the self-disabled image of the
/// candidate — distinct additions that collapse to one self-disabled LTG
/// share the trail verdict; classification ('R'), global ('G'), and array
/// ('A') entries build it from the revision itself.
std::string memo_key_protocol(char kind, const Protocol& p);

/// Append every TrailQuery field to `key` (trail verdicts depend on the
/// query's bounds and filters as much as on the protocol).
void memo_append_query(std::string& key, const TrailQuery& query);

/// Merge-loop control for run_portfolio.
enum class PortfolioStep { kContinue, kStop };

/// Evaluate candidates [0, n) on `num_threads` lanes and merge the verdicts
/// in ascending candidate order on the calling thread.
///
///  * `evaluate(i) -> Verdict` must be a pure function of i (it runs on an
///    arbitrary lane, possibly twice for a skipped-but-needed candidate).
///  * `is_accepted(verdict)` drives the cooperative early exit: once
///    `accept_quota` evaluations were accepted, pending candidates are
///    skipped (quota 0 disables skipping).
///  * `merge(i, verdict)` runs on the caller, strictly ascending, until it
///    returns kStop; candidates after the stop are never merged, exactly
///    like a serial loop that breaks.
template <typename Verdict, typename EvalFn, typename AcceptFn,
          typename MergeFn>
void run_portfolio(std::size_t n, std::size_t num_threads,
                   std::size_t accept_quota, const EvalFn& evaluate,
                   const AcceptFn& is_accepted, const MergeFn& merge) {
  if (n == 0) return;
  std::vector<std::optional<Verdict>> slots(n);
  std::atomic<std::size_t> claims{0};
  // How many lanes had already seen the quota satisfied is a race, hence
  // approx; verdict latency is timing-shaped (p99 = the hard candidates).
  obs::Counter& skipped =
      obs::counter("synth.candidates_skipped_quota", /*approx=*/true);
  obs::Histogram& verdict_ns = obs::histogram("synth.candidate_verdict_ns");
  const auto timed_evaluate = [&](std::size_t i) {
    if (!obs::enabled()) return evaluate(i);
    const obs::Ticks t0 = obs::now();
    auto v = evaluate(i);
    verdict_ns.record(obs::now() - t0);
    return v;
  };
  parallel_for(n, num_threads, /*grain=*/1,
               [&](const ChunkRange& chunk, std::size_t) {
                 for (std::uint64_t i = chunk.begin; i < chunk.end; ++i) {
                   if (accept_quota != 0 &&
                       claims.load(std::memory_order_relaxed) >= accept_quota) {
                     skipped.add(1);
                     continue;
                   }
                   slots[i].emplace(timed_evaluate(static_cast<std::size_t>(i)));
                   if (is_accepted(*slots[i]))
                     claims.fetch_add(1, std::memory_order_relaxed);
                 }
               });
  for (std::size_t i = 0; i < n; ++i) {
    if (!slots[i]) slots[i].emplace(timed_evaluate(i));  // skipped but needed
    if (merge(i, std::move(*slots[i])) == PortfolioStep::kStop) return;
  }
}

}  // namespace ringstab
