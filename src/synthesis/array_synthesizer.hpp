// Adding convergence on ARRAYS (extension; see local/array.hpp).
//
// On unidirectional self-disabling arrays every computation terminates
// (local/array.hpp), so Problem 3.1 reduces to deadlock resolution: make
// every reachable deadlock legitimate. The ring methodology's feedback-set
// step becomes a PATH-CUT step — Resolve must intersect every "bad walk"
// (a chain of local deadlocks from a left-boundary state through some ¬LC
// state), and then any self-disabling candidate transitions complete the
// synthesis with no livelock check needed at all.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "synthesis/portfolio.hpp"

namespace ringstab {

struct ArraySynthesisOptions {
  std::size_t max_resolve_sets = 64;
  std::size_t max_candidate_sets = 4096;  // per Resolve set
  std::size_t max_solutions = 64;
  /// Spot-check closure of I globally at this array length (0 = skip).
  std::size_t closure_check_length = 5;

  /// Portfolio execution (DESIGN.md §10): pool lanes building and verifying
  /// candidates. 1 = serial; 0 = all hardware lanes. Results are
  /// bit-identical at any thread count.
  std::size_t num_threads = 1;

  /// Cache per-candidate deadlock verdicts in a VerdictMemo (pure caching;
  /// results identical with it off).
  bool memoize = true;

  /// Share a memo table across calls; null = private per-call table.
  std::shared_ptr<VerdictMemo> memo;
};

struct ArraySynthesisSolution {
  Protocol protocol;
  std::vector<LocalTransition> added;
  std::vector<LocalStateId> resolve;
};

struct ArraySynthesisResult {
  bool success = false;
  std::vector<ArraySynthesisSolution> solutions;
  std::vector<std::vector<LocalStateId>> resolve_sets;
  std::size_t candidates_examined = 0;

  std::string summary(const Protocol& input) const;
};

/// Synthesize convergence for every array length. Requires a unidirectional
/// locality (left span ≥ 1, right span 0) and the array modeling convention
/// (domain's last value = ⊥); throws ModelError otherwise, or if the
/// closure spot-check fails.
ArraySynthesisResult synthesize_array_convergence(
    const Protocol& p, const ArraySynthesisOptions& options = {});

}  // namespace ringstab
