// Automated addition of convergence in the local state space
// (paper Section 6: Problem 3.1 solved without exploring any global state).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "global/trail_check.hpp"
#include "local/closure.hpp"
#include "local/convergence.hpp"
#include "synthesis/candidates.hpp"
#include "synthesis/portfolio.hpp"

namespace ringstab {

struct SynthesisOptions {
  std::size_t max_resolve_sets = 64;
  std::size_t max_candidate_sets = 65536;  // per Resolve set
  std::size_t max_solutions = 64;          // stop once this many accepted
  bool keep_rejected_reports = true;
  bool require_closed_invariant = true;  // Problem 3.1 input validation
  TrailQuery trail_query;                // livelock-search configuration

  /// Classify each rejecting trail by attempting the paper's reconstruction
  /// at the implied ring size (diagnostic only: a spurious trail still
  /// rejects the candidate, as Theorem 5.14 is merely sufficient). Costs one
  /// small exhaustive check per rejection; capped by this state budget.
  bool classify_rejected_trails = true;
  GlobalStateId classification_state_budget = 1u << 20;

  /// Portfolio execution (DESIGN.md §10): pool lanes used to evaluate
  /// candidate sets. 1 = serial; 0 = all hardware lanes. Results — solution
  /// order, reports, counters — are bit-identical at every thread count.
  std::size_t num_threads = 1;

  /// Reuse verdicts across candidates through a VerdictMemo: candidates
  /// sharing a write-projection signature reuse the NPL fast-path verdict,
  /// candidates collapsing to one self-disabled LTG reuse the trail-search
  /// outcome. Pure caching — results are identical with it off.
  bool memoize = true;

  /// Share a memo table across calls (batch sweeps, benchmarks). Null means
  /// a private table per synthesize_convergence call.
  std::shared_ptr<VerdictMemo> memo;

  /// Discard candidates carrying error-level lint diagnostics
  /// (lint_candidate_errors: a t-arc cycle or an empty LC_r) before any
  /// NPL/trail work. Sound — such candidates can never be certified. With
  /// the filter off the same candidates are detected late, when the trail
  /// pipeline trips over the Assumption 1 violation, so reports and
  /// solutions are bit-identical either way; the filter just skips the
  /// wasted work. Counter: lint.candidates_rejected.
  bool reject_ill_formed = true;

  /// Static rejection lane (analysis/absint.hpp): facts computed once from
  /// the skeleton refute candidates before Protocol construction, memo
  /// traffic or trail searches — an added-arc cycle reproduces the lint
  /// pre-filter's RS002 rejection, and a constructed |E| = 1 trail
  /// certificate reproduces a kRejectedTrail verdict the concrete search
  /// must reach. Verdict statuses and solutions are bit-identical with the
  /// lane on or off (statically rejected candidates skip the trail
  /// classification sweep, so only their `realization` field is omitted).
  /// Active only together with reject_ill_formed, whose rejection semantics
  /// the lane's screen mirrors. Counter: synth.static_rejects.
  bool static_reject_lane = true;
};

/// One examined candidate set and its fate in methodology steps 4–5.
struct CandidateReport {
  enum class Status {
    kAcceptedNpl,        // step 4: no pseudo-livelock at all → livelock-free
    kAcceptedPl,         // step 5: pseudo-livelocks exist but form no
                         // contiguous trail → livelock-free (Thm 5.14)
    kRejectedTrail,      // a qualifying trail exists → cannot certify
    kInconclusive,       // trail search budget exhausted
    kRejectedIllFormed,  // lint pre-filter: error-level diagnostics
  };
  Status status = Status::kInconclusive;
  std::vector<LocalTransition> added;
  std::optional<ContiguousTrail> trail;  // witness for kRejectedTrail

  /// Error diagnostics for kRejectedIllFormed (see
  /// SynthesisOptions::reject_ill_formed).
  std::vector<Diagnostic> ill_formed;

  /// Reconstruction outcome at the trail's implied K (set when
  /// options.classify_rejected_trails and the instance fits the budget;
  /// never set for static rejects — they skip the classification sweep).
  std::optional<TrailRealization> realization;

  /// True iff the static rejection lane refuted the candidate without any
  /// concrete work (see SynthesisOptions::static_reject_lane).
  bool static_reject = false;

  bool accepted() const {
    return status == Status::kAcceptedNpl || status == Status::kAcceptedPl;
  }
};

/// An accepted revision p_ss.
struct SynthesisSolution {
  Protocol protocol;                     // p_ss = p ∪ added
  std::vector<LocalTransition> added;
  std::vector<LocalStateId> resolve;     // the Resolve set realized
  bool via_npl = false;                  // accepted on the NPL fast path
};

struct SynthesisResult {
  bool success = false;
  std::vector<SynthesisSolution> solutions;
  std::vector<std::vector<LocalStateId>> resolve_sets;
  std::vector<CandidateReport> reports;
  std::size_t candidates_examined = 0;
  ClosureCheck closure;

  std::string summary(const Protocol& input) const;
};

/// Solve Problem 3.1: add strong convergence to I for every ring size K,
/// keeping behavior inside I untouched (only transitions sourced at
/// illegitimate local deadlocks are added). Throws ModelError if
/// options.require_closed_invariant and the local closure check fails.
SynthesisResult synthesize_convergence(const Protocol& p,
                                       const SynthesisOptions& options = {});

}  // namespace ringstab
