#include "synthesis/global_synthesizer.hpp"

#include <optional>

#include "analysis/absint.hpp"
#include "analysis/lint.hpp"
#include "core/fmt.hpp"
#include "core/printer.hpp"
#include "local/deadlock.hpp"
#include "obs/obs.hpp"

namespace ringstab {
namespace {

/// One candidate's fixed-K verdict, parked in its portfolio slot.
struct GlobalEval {
  bool prefiltered = false;  // discarded by the Theorem 4.2 prefilter
  bool ill_formed = false;   // discarded by the lint pre-filter
  bool static_reject = false;  // refuted by the static lane (no revision)
  bool ok = false;           // strongly stabilizing for every configured K
  GlobalStateId states = 0;  // global states the K sweep cost
  std::optional<Protocol> pss;  // kept only when ok
};

GlobalEval evaluate_candidate(const Protocol& p,
                              const GlobalSynthesisOptions& options,
                              const StaticRejectionLane* lane,
                              const VerdictMemo* memo, std::size_t ordinal,
                              const std::vector<LocalTransition>& added) {
  // Static ill-formedness screen: equivalent to the lint pre-filter below
  // but computed from skeleton facts, before the revision is constructed.
  if (lane != nullptr) {
    if (auto rej = lane->refute_ill_formed_only(added)) {
      GlobalEval eval;
      eval.ill_formed = true;
      eval.static_reject = true;
      return eval;
    }
  }

  Protocol pss =
      p.with_added(cat(p.name(), "_gss", ordinal), added);
  GlobalEval eval;

  // Lint pre-filter, ahead of the memo lookup so cached fixed-K verdicts
  // stay independent of the flag.
  if (options.reject_ill_formed && !lint_candidate_errors(pss).empty()) {
    eval.ill_formed = true;
    return eval;
  }

  std::string key;
  if (memo != nullptr) {
    key = memo_key_protocol('G', pss);
    memo_append_u64(key, options.min_ring);
    memo_append_u64(key, options.max_ring);
    memo_append_u64(key, options.max_states);
    key.push_back(options.prefilter_with_theorem42 ? 1 : 0);
    if (const auto hit = memo->get(key)) {
      eval.prefiltered = hit->status == 0;
      eval.ok = hit->flag;
      eval.states = hit->amount;
      if (eval.ok) eval.pss = std::move(pss);
      return eval;
    }
  }

  if (options.prefilter_with_theorem42 &&
      !analyze_deadlocks(pss, /*spectrum=*/2).deadlock_free_all_k) {
    eval.prefiltered = true;
  } else {
    // The per-candidate K sweep stays serial: each K short-circuits the
    // next, and candidate-level fan-out already saturates the pool.
    bool ok = true;
    for (std::size_t k = options.min_ring; k <= options.max_ring && ok;
         ++k) {
      const RingInstance ring(pss, k, options.max_states);
      eval.states += ring.num_states();
      ok = strongly_stabilizing(ring);
    }
    eval.ok = ok;
  }

  if (memo != nullptr) {
    CachedVerdict v;
    v.status = eval.prefiltered ? 0 : 1;
    v.flag = eval.ok;
    v.amount = eval.states;
    memo->put(key, v);
  }
  if (eval.ok) eval.pss = std::move(pss);
  return eval;
}

}  // namespace

GlobalSynthesisResult synthesize_convergence_global(
    const Protocol& p, const GlobalSynthesisOptions& options) {
  const obs::Span span("synth.global");
  obs::Counter& generated = obs::counter("synth.candidates_generated");
  obs::Counter& pruned = obs::counter("synth.candidates_pruned");
  obs::Counter& found = obs::counter("synth.solutions_found");
  obs::Counter& explored = obs::counter("synth.global_states_explored");
  obs::Counter& lint_rejected = obs::counter("lint.candidates_rejected");
  obs::Counter& static_rejects = obs::counter("synth.static_rejects");
  GlobalSynthesisResult res;
  const auto resolve_sets = enumerate_resolve_sets(p, options.max_resolve_sets);

  std::optional<StaticRejectionLane> lane;
  if (options.static_reject_lane && options.reject_ill_formed)
    lane.emplace(p);

  std::shared_ptr<VerdictMemo> local_memo;
  const VerdictMemo* memo = nullptr;
  if (options.memoize) {
    local_memo =
        options.memo ? options.memo : std::make_shared<VerdictMemo>();
    memo = local_memo.get();
  }

  for (const auto& resolve : resolve_sets) {
    if (res.solutions.size() >= options.max_solutions) break;
    const auto batch =
        enumerate_candidate_sets(p, resolve, options.max_candidate_sets);
    const std::size_t base = res.candidates_examined;
    const std::size_t quota = options.max_solutions - res.solutions.size();
    run_portfolio<GlobalEval>(
        batch.size(), options.num_threads, quota,
        [&](std::size_t i) {
          return evaluate_candidate(p, options, lane ? &*lane : nullptr, memo,
                                    base + i + 1, batch[i]);
        },
        [](const GlobalEval& e) { return e.ok; },
        [&](std::size_t i, GlobalEval eval) {
          if (res.solutions.size() >= options.max_solutions)
            return PortfolioStep::kStop;
          ++res.candidates_examined;
          generated.add(1);
          res.states_explored += eval.states;
          explored.add(eval.states);
          if (eval.ill_formed) {
            ++res.ill_formed_out;
            pruned.add(1);
            lint_rejected.add(1);
            if (eval.static_reject) static_rejects.add(1);
          } else if (eval.prefiltered) {
            ++res.prefiltered_out;
            pruned.add(1);
          } else if (eval.ok) {
            res.solutions.push_back({std::move(*eval.pss), batch[i], resolve});
            found.add(1);
          } else {
            pruned.add(1);
          }
          return PortfolioStep::kContinue;
        });
  }
  res.success = !res.solutions.empty();
  return res;
}

std::string GlobalSynthesisResult::summary(const Protocol& input) const {
  std::ostringstream os;
  os << "global fixed-K synthesis for " << input.name() << ": "
     << (success ? "SUCCESS" : "FAILURE") << "\n"
     << "  candidates examined: " << candidates_examined
     << "  solutions: " << solutions.size()
     << "  global states explored: " << states_explored << "\n";
  if (ill_formed_out > 0)
    os << "  rejected (ill-formed by lint): " << ill_formed_out << "\n";
  for (std::size_t i = 0; i < solutions.size() && i < 4; ++i)
    os << "  solution " << i + 1 << ": added "
       << join(solutions[i].added, "; ",
               [&](const LocalTransition& t) {
                 return describe_transition(solutions[i].protocol, t);
               })
       << "\n";
  if (solutions.size() > 4)
    os << "  … and " << solutions.size() - 4 << " more\n";
  return os.str();
}

}  // namespace ringstab
