#include "synthesis/global_synthesizer.hpp"

#include "core/fmt.hpp"
#include "core/printer.hpp"
#include "local/deadlock.hpp"
#include "obs/obs.hpp"

namespace ringstab {

GlobalSynthesisResult synthesize_convergence_global(
    const Protocol& p, const GlobalSynthesisOptions& options) {
  const obs::Span span("synth.global");
  obs::Counter& generated = obs::counter("synth.candidates_generated");
  obs::Counter& pruned = obs::counter("synth.candidates_pruned");
  GlobalSynthesisResult res;
  const auto resolve_sets = enumerate_resolve_sets(p, options.max_resolve_sets);

  for (const auto& resolve : resolve_sets) {
    if (res.solutions.size() >= options.max_solutions) break;
    for (auto& added : enumerate_candidate_sets(p, resolve,
                                                options.max_candidate_sets)) {
      if (res.solutions.size() >= options.max_solutions) break;
      ++res.candidates_examined;
      generated.add(1);
      Protocol pss = p.with_added(
          cat(p.name(), "_gss", res.candidates_examined), added);

      if (options.prefilter_with_theorem42 &&
          !analyze_deadlocks(pss, /*spectrum=*/2).deadlock_free_all_k) {
        ++res.prefiltered_out;
        pruned.add(1);
        continue;
      }

      bool ok = true;
      for (std::size_t k = options.min_ring; k <= options.max_ring && ok;
           ++k) {
        const RingInstance ring(pss, k, options.max_states);
        res.states_explored += ring.num_states();
        obs::counter("synth.global_states_explored").add(ring.num_states());
        ok = strongly_stabilizing(ring);
      }
      if (ok) {
        res.solutions.push_back({std::move(pss), added, resolve});
        obs::counter("synth.solutions_found").add(1);
      } else {
        pruned.add(1);
      }
    }
  }
  res.success = !res.solutions.empty();
  return res;
}

std::string GlobalSynthesisResult::summary(const Protocol& input) const {
  std::ostringstream os;
  os << "global fixed-K synthesis for " << input.name() << ": "
     << (success ? "SUCCESS" : "FAILURE") << "\n"
     << "  candidates examined: " << candidates_examined
     << "  solutions: " << solutions.size()
     << "  global states explored: " << states_explored << "\n";
  for (std::size_t i = 0; i < solutions.size() && i < 4; ++i)
    os << "  solution " << i + 1 << ": added "
       << join(solutions[i].added, "; ",
               [&](const LocalTransition& t) {
                 return describe_transition(solutions[i].protocol, t);
               })
       << "\n";
  return os.str();
}

}  // namespace ringstab
