// Fixed-K baseline synthesizer (the global-state-space approach of the
// paper's related work [16,17]: generate candidates, model-check each K).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "global/checker.hpp"
#include "synthesis/candidates.hpp"
#include "synthesis/portfolio.hpp"

namespace ringstab {

struct GlobalSynthesisOptions {
  /// Candidates are accepted iff p_ss(K) strongly stabilizes for every K in
  /// [min_ring, max_ring] (inclusive).
  std::size_t min_ring = 2;
  std::size_t max_ring = 5;
  std::size_t max_resolve_sets = 64;
  std::size_t max_candidate_sets = 65536;
  std::size_t max_solutions = 64;
  GlobalStateId max_states = GlobalStateId{1} << 24;

  /// Hybrid mode: run Theorem 4.2 on each candidate first and skip the
  /// model checking for candidates with deadlocks at *any* size. This both
  /// speeds up the baseline and removes one class of non-generalizable
  /// solutions (K-bounded livelock acceptance remains).
  bool prefilter_with_theorem42 = false;

  /// Portfolio execution (DESIGN.md §10): pool lanes evaluating candidates
  /// (each candidate's K sweep stays serial inside its lane). 1 = serial;
  /// 0 = all hardware lanes. Results are bit-identical at any thread count.
  std::size_t num_threads = 1;

  /// Cache each candidate's full fixed-K verdict (+ the states it cost) in
  /// a VerdictMemo; `states_explored` then charges cached candidates what
  /// their sweep originally cost, keeping totals thread- and memo-invariant.
  bool memoize = true;

  /// Share a memo table across calls; null = private per-call table.
  std::shared_ptr<VerdictMemo> memo;

  /// Discard candidates carrying error-level lint diagnostics before any
  /// K sweep (see SynthesisOptions::reject_ill_formed). Runs before the
  /// memo, so cached verdicts are unaffected by the flag. Sound: such
  /// candidates fail every sweep anyway. Counter: lint.candidates_rejected.
  bool reject_ill_formed = true;

  /// Static rejection lane (analysis/absint.hpp), ill-formedness screen
  /// only: an added-arc cycle is refuted from skeleton facts without
  /// constructing the revision Protocol. Trail certificates are NOT used
  /// here — this synthesizer's rejections are fixed-K facts that a
  /// parameterized trail does not imply. Active only together with
  /// reject_ill_formed. Counter: synth.static_rejects.
  bool static_reject_lane = true;
};

struct GlobalSynthesisSolution {
  Protocol protocol;
  std::vector<LocalTransition> added;
  std::vector<LocalStateId> resolve;
};

struct GlobalSynthesisResult {
  bool success = false;
  std::vector<GlobalSynthesisSolution> solutions;
  std::size_t candidates_examined = 0;
  /// Candidates discarded by the Theorem 4.2 prefilter (hybrid mode only).
  std::size_t prefiltered_out = 0;
  /// Candidates discarded by the lint pre-filter (reject_ill_formed).
  std::size_t ill_formed_out = 0;
  /// Global states visited across every model-checking run — the cost the
  /// local method avoids entirely.
  GlobalStateId states_explored = 0;

  std::string summary(const Protocol& input) const;
};

/// Enumerate the same candidate space as the local synthesizer, but decide
/// each candidate by exhaustive model checking of p_ss(K) for K in the
/// configured range. Solutions carry NO generalization guarantee: the paper's
/// Example 4.3 is exactly a protocol that passes K=5 yet deadlocks at K=4m
/// (see bench_synth_local_vs_global).
GlobalSynthesisResult synthesize_convergence_global(
    const Protocol& p, const GlobalSynthesisOptions& options = {});

}  // namespace ringstab
