#include "synthesis/local_synthesizer.hpp"

#include <algorithm>

#include "core/fmt.hpp"
#include "core/printer.hpp"
#include "global/checker.hpp"
#include "local/pseudo_livelock.hpp"
#include "obs/obs.hpp"

namespace ringstab {

SynthesisResult synthesize_convergence(const Protocol& p,
                                       const SynthesisOptions& options) {
  const obs::Span span("synth.local");
  obs::Counter& generated = obs::counter("synth.candidates_generated");
  obs::Counter& pruned = obs::counter("synth.candidates_pruned");
  SynthesisResult res;
  res.closure = check_invariant_closure(p);
  if (options.require_closed_invariant &&
      res.closure.verdict != ClosureCheck::Verdict::kClosed) {
    // The local check is sound but conservative: confirm the suspected
    // violation on a small concrete ring before rejecting the input.
    const std::size_t k =
        static_cast<std::size_t>(p.locality().window()) + 2;
    const RingInstance ring(p, k);
    if (!GlobalChecker(ring).check_closure())
      throw ModelError(cat("Problem 3.1 input invalid: ",
                           res.closure.describe(p), " (confirmed at K=", k,
                           ")"));
  }

  res.resolve_sets = enumerate_resolve_sets(p, options.max_resolve_sets);

  for (const auto& resolve : res.resolve_sets) {
    if (res.solutions.size() >= options.max_solutions) break;
    for (auto& added : enumerate_candidate_sets(p, resolve,
                                                options.max_candidate_sets)) {
      if (res.solutions.size() >= options.max_solutions) break;
      ++res.candidates_examined;
      generated.add(1);

      Protocol pss = p.with_added(
          cat(p.name(), "_ss", res.candidates_examined), added);

      CandidateReport report;
      report.added = added;

      // Step 4 fast path (NPL): if the write projection of the *entire*
      // δ_r of p_ss has no value cycle, no subset can form a
      // pseudo-livelock, so Theorem 5.14 certifies livelock-freedom with no
      // trail search.
      const WriteProjection all(pss, {});
      if (!all.has_pseudo_livelock()) {
        report.status = CandidateReport::Status::kAcceptedNpl;
      } else {
        // Step 5 (PL): search for a qualifying contiguous trail in the LTG
        // of the self-disabled p_ss.
        const LivelockAnalysis live =
            check_livelock_freedom(pss, options.trail_query);
        switch (live.verdict) {
          case LivelockAnalysis::Verdict::kLivelockFree:
            report.status = CandidateReport::Status::kAcceptedPl;
            break;
          case LivelockAnalysis::Verdict::kTrailFound:
            report.status = CandidateReport::Status::kRejectedTrail;
            report.trail = live.trail();
            if (options.classify_rejected_trails) {
              try {
                report.realization =
                    realize_trail(pss, *report.trail).verdict;
              } catch (const CapacityError&) {
                // implied K too large for the classification budget
              }
            }
            break;
          case LivelockAnalysis::Verdict::kInconclusive:
            report.status = CandidateReport::Status::kInconclusive;
            break;
        }
      }

      if (report.accepted()) {
        // Defensive: the Resolve construction guarantees deadlock-freedom;
        // verify the Theorem 4.2 condition on the revised protocol anyway.
        const DeadlockAnalysis dl = analyze_deadlocks(pss, /*spectrum=*/2);
        RINGSTAB_ASSERT(dl.deadlock_free_all_k,
                        "Resolve set failed to break all bad cycles");
        SynthesisSolution sol{std::move(pss), added, resolve,
                              report.status ==
                                  CandidateReport::Status::kAcceptedNpl};
        res.solutions.push_back(std::move(sol));
        obs::counter("synth.solutions_found").add(1);
      } else {
        pruned.add(1);
      }
      if (options.keep_rejected_reports || report.accepted())
        res.reports.push_back(std::move(report));
    }
  }
  res.success = !res.solutions.empty();
  return res;
}

std::string SynthesisResult::summary(const Protocol& input) const {
  std::ostringstream os;
  os << "synthesis for " << input.name() << ": "
     << (success ? "SUCCESS" : "FAILURE") << "\n"
     << "  resolve sets: " << resolve_sets.size() << "  candidates examined: "
     << candidates_examined << "  solutions: " << solutions.size() << "\n";
  std::size_t rejected = 0, inconclusive = 0, real = 0, spurious = 0;
  for (const auto& r : reports) {
    if (r.status == CandidateReport::Status::kRejectedTrail) {
      ++rejected;
      if (r.realization) {
        if (*r.realization == TrailRealization::kRealized ||
            *r.realization == TrailRealization::kOtherLivelock)
          ++real;
        else
          ++spurious;
      }
    }
    if (r.status == CandidateReport::Status::kInconclusive) ++inconclusive;
  }
  os << "  rejected (trail found): " << rejected;
  if (real + spurious > 0)
    os << " (" << real << " realized as livelocks, " << spurious
       << " spurious at the implied K)";
  os << "  inconclusive: " << inconclusive << "\n";
  for (std::size_t i = 0; i < solutions.size() && i < 4; ++i) {
    os << "  solution " << i + 1 << (solutions[i].via_npl ? " (NPL)" : " (PL)")
       << ": added "
       << join(solutions[i].added, "; ",
               [&](const LocalTransition& t) {
                 return describe_transition(solutions[i].protocol, t);
               })
       << "\n";
  }
  return os.str();
}

}  // namespace ringstab
