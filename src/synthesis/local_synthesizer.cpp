#include "synthesis/local_synthesizer.hpp"

#include <algorithm>

#include "analysis/absint.hpp"
#include "analysis/lint.hpp"
#include "core/fmt.hpp"
#include "core/printer.hpp"
#include "global/checker.hpp"
#include "local/livelock.hpp"
#include "local/pseudo_livelock.hpp"
#include "local/self_disabling.hpp"
#include "obs/obs.hpp"

namespace ringstab {
namespace {

/// One evaluated candidate, parked in its portfolio slot until the
/// ascending merge (see portfolio.hpp).
struct LocalEval {
  CandidateReport report;
  std::optional<Protocol> pss;  // kept only when accepted (solutions need it)
};

/// Methodology steps 4–5 for one candidate set: a pure function of
/// (p, options, ordinal, added), safe to run on any pool lane.
LocalEval evaluate_candidate(const Protocol& p, const SynthesisOptions& options,
                             const StaticRejectionLane* lane,
                             const VerdictMemo* memo, std::size_t ordinal,
                             const std::vector<LocalTransition>& added) {
  // Static rejection lane: refute from skeleton facts alone, before the
  // revision Protocol is even constructed. The lane only rejects with a
  // certificate the concrete pipeline below would also reject on, so
  // statuses and solutions are bit-identical with it on or off.
  if (lane != nullptr) {
    if (auto rej = lane->refute(added)) {
      LocalEval eval;
      CandidateReport& report = eval.report;
      report.added = added;
      report.static_reject = true;
      if (rej->kind == StaticRejectionLane::Rejection::Kind::kIllFormed) {
        report.status = CandidateReport::Status::kRejectedIllFormed;
        report.ill_formed = std::move(rej->diagnostics);
      } else {
        report.status = CandidateReport::Status::kRejectedTrail;
        report.trail = std::move(rej->trail);
      }
      return eval;
    }
  }

  Protocol pss = p.with_added(cat(p.name(), "_ss", ordinal), added);
  LocalEval eval;
  CandidateReport& report = eval.report;
  report.added = added;

  // Lint pre-filter: a candidate with error-level diagnostics (t-arc cycle,
  // empty LC_r) can never be certified — and a t-arc cycle would make the
  // trail pipeline below throw. Runs before any memo traffic so memoized
  // results are unaffected by the flag.
  if (options.reject_ill_formed) {
    auto errs = lint_candidate_errors(pss);
    if (!errs.empty()) {
      report.status = CandidateReport::Status::kRejectedIllFormed;
      report.ill_formed = std::move(errs);
      return eval;
    }
  }

  // Step 4 fast path (NPL): if the write projection of the *entire* δ_r of
  // p_ss has no value cycle, no subset can form a pseudo-livelock, so
  // Theorem 5.14 certifies livelock-freedom with no trail search. The
  // verdict depends only on the projected write-pair set, so candidates
  // sharing that signature share one memo entry.
  bool npl_livelock_free;
  if (memo != nullptr) {
    const std::string key = memo_key_npl(pss);
    if (const auto hit = memo->get(key)) {
      npl_livelock_free = !hit->flag;
    } else {
      CachedVerdict v;
      v.flag = WriteProjection(pss, {}).has_pseudo_livelock();
      npl_livelock_free = !v.flag;
      memo->put(key, v);
    }
  } else {
    npl_livelock_free = !WriteProjection(pss, {}).has_pseudo_livelock();
  }

  if (npl_livelock_free) {
    report.status = CandidateReport::Status::kAcceptedNpl;
  } else try {
    // Step 5 (PL): search for a qualifying contiguous trail in the LTG of
    // the self-disabled p_ss. The search reads nothing but that
    // self-disabled image, so distinct additions collapsing to one
    // self-disabled LTG share the trail verdict.
    bool decided = false;
    std::string trail_key;
    if (memo != nullptr) {
      const bool sd = is_self_disabling(pss);
      trail_key =
          memo_key_protocol('T', sd ? pss : make_self_disabling(pss));
      memo_append_query(trail_key, options.trail_query);
      if (const auto hit = memo->get(trail_key)) {
        report.status = static_cast<CandidateReport::Status>(hit->status);
        report.trail = hit->trail;
        decided = true;
      }
    }
    if (!decided) {
      const LivelockAnalysis live =
          check_livelock_freedom(pss, options.trail_query);
      switch (live.verdict) {
        case LivelockAnalysis::Verdict::kLivelockFree:
          report.status = CandidateReport::Status::kAcceptedPl;
          break;
        case LivelockAnalysis::Verdict::kTrailFound:
          report.status = CandidateReport::Status::kRejectedTrail;
          report.trail = live.trail();
          break;
        case LivelockAnalysis::Verdict::kInconclusive:
          report.status = CandidateReport::Status::kInconclusive;
          break;
      }
      if (memo != nullptr) {
        CachedVerdict v;
        v.status = static_cast<std::uint8_t>(report.status);
        v.trail = report.trail;
        memo->put(trail_key, v);
      }
    }

    if (report.status == CandidateReport::Status::kRejectedTrail &&
        options.classify_rejected_trails) {
      // Classification instantiates the full revision p_ss(K), so its memo
      // entry is keyed on the revision itself, not the self-disabled image.
      bool classified = false;
      std::string rkey;
      if (memo != nullptr) {
        rkey = memo_key_protocol('R', pss);
        memo_append_query(rkey, options.trail_query);
        memo_append_u64(rkey, options.classification_state_budget);
        if (const auto hit = memo->get(rkey)) {
          if (hit->realization)
            report.realization =
                static_cast<TrailRealization>(*hit->realization);
          classified = true;
        }
      }
      if (!classified) {
        try {
          report.realization = realize_trail(pss, *report.trail).verdict;
        } catch (const CapacityError&) {
          // implied K too large for the classification budget
        }
        if (memo != nullptr) {
          CachedVerdict v;
          if (report.realization)
            v.realization = static_cast<int>(*report.realization);
          memo->put(rkey, v);
        }
      }
    }
  } catch (const ModelError&) {
    // Reachable only with the pre-filter off: the self-disabling
    // transformation (and hence the trail pipeline) is undefined for
    // Assumption-1-violating candidates. Late detection here keeps
    // reports and solutions bit-identical with the filter on.
    auto errs = lint_candidate_errors(pss);
    if (errs.empty()) throw;
    report.status = CandidateReport::Status::kRejectedIllFormed;
    report.ill_formed = std::move(errs);
    return eval;
  }

  if (report.accepted()) {
    // Defensive: the Resolve construction guarantees deadlock-freedom;
    // verify the Theorem 4.2 condition on the revised protocol anyway.
    const DeadlockAnalysis dl = analyze_deadlocks(pss, /*spectrum=*/2);
    RINGSTAB_ASSERT(dl.deadlock_free_all_k,
                    "Resolve set failed to break all bad cycles");
    eval.pss = std::move(pss);
  }
  return eval;
}

}  // namespace

SynthesisResult synthesize_convergence(const Protocol& p,
                                       const SynthesisOptions& options) {
  const obs::Span span("synth.local");
  obs::Counter& generated = obs::counter("synth.candidates_generated");
  obs::Counter& pruned = obs::counter("synth.candidates_pruned");
  obs::Counter& found = obs::counter("synth.solutions_found");
  obs::Counter& ill_formed = obs::counter("lint.candidates_rejected");
  obs::Counter& static_rejects = obs::counter("synth.static_rejects");
  SynthesisResult res;
  res.closure = check_invariant_closure(p);
  if (options.require_closed_invariant &&
      res.closure.verdict != ClosureCheck::Verdict::kClosed) {
    // The local check is sound but conservative: confirm the suspected
    // violation on a small concrete ring before rejecting the input.
    const std::size_t k =
        static_cast<std::size_t>(p.locality().window()) + 2;
    const RingInstance ring(p, k);
    if (!GlobalChecker(ring).check_closure())
      throw ModelError(cat("Problem 3.1 input invalid: ",
                           res.closure.describe(p), " (confirmed at K=", k,
                           ")"));
  }

  res.resolve_sets = enumerate_resolve_sets(p, options.max_resolve_sets);

  // The lane mirrors the lint pre-filter's rejection semantics, so it is
  // active only when that filter is (with the filter off, an empty-LC_r
  // candidate legitimately flows through the NPL/PL pipeline).
  std::optional<StaticRejectionLane> lane;
  if (options.static_reject_lane && options.reject_ill_formed)
    lane.emplace(p, options.trail_query);

  std::shared_ptr<VerdictMemo> local_memo;
  const VerdictMemo* memo = nullptr;
  if (options.memoize) {
    local_memo =
        options.memo ? options.memo : std::make_shared<VerdictMemo>();
    memo = local_memo.get();
  }

  for (const auto& resolve : res.resolve_sets) {
    if (res.solutions.size() >= options.max_solutions) break;
    const auto batch =
        enumerate_candidate_sets(p, resolve, options.max_candidate_sets);
    const std::size_t base = res.candidates_examined;
    const std::size_t quota = options.max_solutions - res.solutions.size();
    run_portfolio<LocalEval>(
        batch.size(), options.num_threads, quota,
        [&](std::size_t i) {
          return evaluate_candidate(p, options, lane ? &*lane : nullptr, memo,
                                    base + i + 1, batch[i]);
        },
        [](const LocalEval& e) { return e.report.accepted(); },
        [&](std::size_t, LocalEval eval) {
          if (res.solutions.size() >= options.max_solutions)
            return PortfolioStep::kStop;
          ++res.candidates_examined;
          generated.add(1);
          const bool accepted = eval.report.accepted();
          if (accepted) {
            SynthesisSolution sol{std::move(*eval.pss), eval.report.added,
                                  resolve,
                                  eval.report.status ==
                                      CandidateReport::Status::kAcceptedNpl};
            res.solutions.push_back(std::move(sol));
            found.add(1);
          } else {
            pruned.add(1);
            // Counted here, in the deterministic ascending merge, so the
            // total is invariant under thread count and quota early-exit.
            if (eval.report.status ==
                CandidateReport::Status::kRejectedIllFormed)
              ill_formed.add(1);
            if (eval.report.static_reject) static_rejects.add(1);
          }
          if (options.keep_rejected_reports || accepted)
            res.reports.push_back(std::move(eval.report));
          return PortfolioStep::kContinue;
        });
  }
  res.success = !res.solutions.empty();
  return res;
}

std::string SynthesisResult::summary(const Protocol& input) const {
  std::ostringstream os;
  os << "synthesis for " << input.name() << ": "
     << (success ? "SUCCESS" : "FAILURE") << "\n"
     << "  resolve sets: " << resolve_sets.size() << "  candidates examined: "
     << candidates_examined << "  solutions: " << solutions.size() << "\n";
  std::size_t rejected = 0, inconclusive = 0, real = 0, spurious = 0,
              ill = 0;
  for (const auto& r : reports) {
    if (r.status == CandidateReport::Status::kRejectedTrail) {
      ++rejected;
      if (r.realization) {
        if (*r.realization == TrailRealization::kRealized ||
            *r.realization == TrailRealization::kOtherLivelock)
          ++real;
        else
          ++spurious;
      }
    }
    if (r.status == CandidateReport::Status::kInconclusive) ++inconclusive;
    if (r.status == CandidateReport::Status::kRejectedIllFormed) ++ill;
  }
  os << "  rejected (trail found): " << rejected;
  if (real + spurious > 0)
    os << " (" << real << " realized as livelocks, " << spurious
       << " spurious at the implied K)";
  os << "  inconclusive: " << inconclusive << "\n";
  if (ill > 0) os << "  rejected (ill-formed by lint): " << ill << "\n";
  for (std::size_t i = 0; i < solutions.size() && i < 4; ++i) {
    os << "  solution " << i + 1 << (solutions[i].via_npl ? " (NPL)" : " (PL)")
       << ": added "
       << join(solutions[i].added, "; ",
               [&](const LocalTransition& t) {
                 return describe_transition(solutions[i].protocol, t);
               })
       << "\n";
  }
  if (solutions.size() > 4)
    os << "  … and " << solutions.size() - 4 << " more\n";
  return os.str();
}

}  // namespace ringstab
