// Shared candidate enumeration for the local and global synthesizers
// (paper Section 6.1, steps 1–3).
#pragma once

#include <vector>

#include "core/protocol.hpp"

namespace ringstab {

/// Step 2: the minimal Resolve sets — minimal subsets of the illegitimate
/// local deadlocks whose removal leaves the deadlock-induced RCG without
/// directed cycles through ¬LC_r (Theorem 4.2). Sorted by size then
/// lexicographically. Empty inner vectors mean p is already deadlock-free.
std::vector<std::vector<LocalStateId>> enumerate_resolve_sets(
    const Protocol& p, std::size_t max_sets = 64);

/// Step 3: candidate local transitions resolving one deadlock s ∈ Resolve:
/// every (s, s') whose target the input protocol does not already fire
/// from. Combinations that violate Assumption 1 (a t-arc cycle through the
/// resolved states) stay in the stream — the lint pre-filter discards them
/// with an RS002 diagnostic (SynthesisOptions::reject_ill_formed).
std::vector<LocalTransition> candidate_transitions(const Protocol& p,
                                                   LocalStateId s);

/// All candidate *sets*: one candidate transition per state of `resolve`
/// (the paper's "it is sufficient to include only one local transition
/// originating at every local deadlock"). Cartesian product, capped.
std::vector<std::vector<LocalTransition>> enumerate_candidate_sets(
    const Protocol& p, const std::vector<LocalStateId>& resolve,
    std::size_t max_sets = 65536);

}  // namespace ringstab
