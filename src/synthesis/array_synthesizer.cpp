#include "synthesis/array_synthesizer.hpp"

#include <algorithm>
#include <set>

#include "core/fmt.hpp"
#include "core/printer.hpp"
#include "global/array_instance.hpp"
#include "local/array.hpp"
#include "local/rcg.hpp"
#include "local/self_disabling.hpp"
#include "obs/obs.hpp"

namespace ringstab {
namespace {

// A bad walk: s_0 (left-boundary deadlock) → ... → s_m, all deadlocks not
// in `removed`, interior states ⊥-free, visiting some illegitimate state.
// Returns a shortest witness (BFS) or nullopt.
std::optional<std::vector<LocalStateId>> find_bad_walk(
    const Protocol& p, const Digraph& rcg, const std::vector<bool>& removed) {
  const Value bot = boundary_value(p);
  const auto& space = p.space();
  const int left = space.locality().left;

  auto is_start = [&](LocalStateId s) {
    // Feasible for position 0 of a long array: every negative offset ⊥,
    // the rest real.
    for (int off = -left; off <= 0; ++off)
      if ((space.value(s, off) == bot) != (off < 0)) return false;
    return true;
  };
  auto is_interior = [&](LocalStateId s) {
    for (int off = -left; off <= 0; ++off)
      if (space.value(s, off) == bot) return false;
    return true;
  };

  // BFS over (state), parents for witness reconstruction. Starts are
  // boundary-grade states for positions 0..left-1; to keep this simple (and
  // exact for left == 1, the supported case), we treat position-0 starts
  // and interior continuations.
  std::vector<LocalStateId> parent(p.num_states(), kInvalidLocalState);
  std::vector<bool> seen(p.num_states(), false);
  std::vector<LocalStateId> queue;
  for (LocalStateId s = 0; s < p.num_states(); ++s) {
    if (!p.is_deadlock(s) || removed[s] || !is_start(s)) continue;
    seen[s] = true;
    queue.push_back(s);
  }
  auto witness_from = [&](LocalStateId end) {
    std::vector<LocalStateId> walk{end};
    for (LocalStateId x = parent[end]; x != kInvalidLocalState;
         x = parent[x])
      walk.push_back(x);
    std::reverse(walk.begin(), walk.end());
    return walk;
  };
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const LocalStateId s = queue[head];
    if (!p.is_legit(s)) return witness_from(s);
    for (VertexId t : rcg.out(s)) {
      if (seen[t] || removed[t] || !p.is_deadlock(t) || !is_interior(t))
        continue;
      seen[t] = true;
      parent[t] = s;
      queue.push_back(t);
    }
  }
  return std::nullopt;
}

void enumerate_resolves(const Protocol& p, const Digraph& rcg,
                        std::vector<bool>& removed,
                        std::vector<LocalStateId>& chosen,
                        std::set<std::vector<LocalStateId>>& found,
                        std::size_t cap) {
  if (found.size() >= cap * 16) return;
  const auto walk = find_bad_walk(p, rcg, removed);
  if (!walk) {
    auto s = chosen;
    std::sort(s.begin(), s.end());
    found.insert(std::move(s));
    return;
  }
  bool any = false;
  for (LocalStateId v : *walk) {
    if (p.is_legit(v)) continue;  // only ¬LC states may be resolved
    any = true;
    removed[v] = true;
    chosen.push_back(v);
    enumerate_resolves(p, rcg, removed, chosen, found, cap);
    chosen.pop_back();
    removed[v] = false;
  }
  if (!any)
    throw ModelError(
        "a bad walk contains no illegitimate state to resolve (impossible: "
        "bad walks end at an illegitimate state)");
}

/// One built-and-verified candidate, parked in its portfolio slot (every
/// array candidate is accepted; the verdict only carries the artifacts).
struct ArrayEval {
  Protocol pss;
  std::vector<LocalTransition> added;
};

}  // namespace

ArraySynthesisResult synthesize_array_convergence(
    const Protocol& p, const ArraySynthesisOptions& options) {
  const obs::Span span("synth.array");
  validate_array_protocol(p);
  if (!p.locality().is_unidirectional() || p.locality().left != 1)
    throw ModelError(
        "array synthesis supports unidirectional localities with left span "
        "1 (reads x[-1]..x[0])");
  if (!is_self_disabling(p))
    throw ModelError("array synthesis requires a self-disabling input");

  if (options.closure_check_length >= 2) {
    const ArrayInstance inst(p, options.closure_check_length);
    std::vector<ArrayInstance::Step> succ;
    for (GlobalStateId s = 0; s < inst.num_states(); ++s) {
      if (!inst.in_invariant(s)) continue;
      inst.successors(s, succ);
      for (const auto& step : succ)
        if (!inst.in_invariant(step.target))
          throw ModelError(cat("input invariant is not closed (witnessed at "
                               "array length ",
                               options.closure_check_length, ")"));
    }
  }

  ArraySynthesisResult res;
  obs::Counter& generated = obs::counter("synth.candidates_generated");
  obs::Counter& found = obs::counter("synth.solutions_found");
  std::shared_ptr<VerdictMemo> local_memo;
  const VerdictMemo* memo = nullptr;
  if (options.memoize) {
    local_memo =
        options.memo ? options.memo : std::make_shared<VerdictMemo>();
    memo = local_memo.get();
  }
  const Digraph rcg = build_rcg(p.space());

  // Resolve sets: minimal ¬LC hitting sets of all bad walks.
  {
    std::vector<bool> removed(p.num_states(), false);
    std::vector<LocalStateId> chosen;
    std::set<std::vector<LocalStateId>> found;
    enumerate_resolves(p, rcg, removed, chosen, found,
                       options.max_resolve_sets);
    // Inclusion-minimal only.
    for (const auto& s : found) {
      const bool has_subset =
          std::any_of(found.begin(), found.end(), [&](const auto& t) {
            return t.size() < s.size() &&
                   std::includes(s.begin(), s.end(), t.begin(), t.end());
          });
      if (!has_subset) res.resolve_sets.push_back(s);
    }
    std::sort(res.resolve_sets.begin(), res.resolve_sets.end(),
              [](const auto& a, const auto& b) {
                if (a.size() != b.size()) return a.size() < b.size();
                return a < b;
              });
    if (res.resolve_sets.size() > options.max_resolve_sets)
      res.resolve_sets.resize(options.max_resolve_sets);
  }

  const Value bot = boundary_value(p);
  for (const auto& resolve : res.resolve_sets) {
    if (res.solutions.size() >= options.max_solutions) break;
    // Candidates per resolved state: any real-valued self-disabling write.
    std::vector<std::vector<LocalTransition>> per_state;
    bool feasible = true;
    for (LocalStateId s : resolve) {
      std::vector<LocalTransition> cands;
      if (p.space().self(s) == bot) {
        feasible = false;  // virtual state: cannot act (should not happen)
        break;
      }
      for (Value v = 0; v < bot; ++v) {
        if (v == p.space().self(s)) continue;
        const LocalStateId target = p.space().with_self(s, v);
        if (std::find(resolve.begin(), resolve.end(), target) !=
            resolve.end())
          continue;
        if (p.is_enabled(target)) continue;
        cands.push_back({s, target});
      }
      if (cands.empty()) {
        feasible = false;
        break;
      }
      per_state.push_back(std::move(cands));
    }
    if (!feasible) continue;

    // Batch size replicating the serial odometer's stopping rule exactly:
    // the loop ran while the solution quota had room, and checked the
    // max_candidate_sets cap only *after* accepting — so a Resolve set
    // reached with the cap already spent still contributed one candidate.
    std::uint64_t odometer_total = 1;
    for (const auto& cands : per_state) {
      odometer_total *= cands.size();
      if (odometer_total > options.max_candidate_sets + options.max_solutions)
        break;  // beyond every other bound; avoid overflow
    }
    const std::size_t base = res.candidates_examined;
    const std::size_t cap_room =
        options.max_candidate_sets > base
            ? options.max_candidate_sets - base
            : std::size_t{1};
    const std::size_t batch = std::min<std::uint64_t>(
        odometer_total,
        std::min<std::uint64_t>(options.max_solutions - res.solutions.size(),
                                std::max<std::size_t>(cap_room, 1)));

    run_portfolio<ArrayEval>(
        batch, options.num_threads, /*accept_quota=*/0,
        [&](std::size_t j) {
          // Decode candidate j of the odometer (index 0 least significant).
          std::vector<LocalTransition> added;
          std::size_t rem = j;
          for (const auto& cands : per_state) {
            added.push_back(cands[rem % cands.size()]);
            rem /= cands.size();
          }
          Protocol pss =
              p.with_added(cat(p.name(), "_ass", base + j + 1), added);
          bool free_all_n;
          if (memo != nullptr) {
            const std::string key = memo_key_protocol('A', pss);
            if (const auto hit = memo->get(key)) {
              free_all_n = hit->flag;
            } else {
              free_all_n = analyze_array_deadlocks(pss, 8).deadlock_free_all_n;
              CachedVerdict v;
              v.flag = free_all_n;
              memo->put(key, v);
            }
          } else {
            // Defensive re-check of the local theorem on the revision.
            free_all_n = analyze_array_deadlocks(pss, 8).deadlock_free_all_n;
          }
          RINGSTAB_ASSERT(free_all_n,
                          "array Resolve set failed to cut all bad walks");
          return ArrayEval{std::move(pss), std::move(added)};
        },
        [](const ArrayEval&) { return true; },
        [&](std::size_t, ArrayEval eval) {
          ++res.candidates_examined;
          generated.add(1);
          res.solutions.push_back(
              {std::move(eval.pss), std::move(eval.added), resolve});
          found.add(1);
          return PortfolioStep::kContinue;
        });
  }
  res.success = !res.solutions.empty();
  return res;
}

std::string ArraySynthesisResult::summary(const Protocol& input) const {
  std::ostringstream os;
  os << "array synthesis for " << input.name() << ": "
     << (success ? "SUCCESS" : "FAILURE") << "\n"
     << "  resolve sets: " << resolve_sets.size()
     << "  candidates examined: " << candidates_examined
     << "  solutions: " << solutions.size()
     << " (livelock-freedom is automatic: unidirectional self-disabling "
        "arrays terminate)\n";
  for (std::size_t i = 0; i < solutions.size() && i < 4; ++i)
    os << "  solution " << i + 1 << ": added "
       << join(solutions[i].added, "; ",
               [&](const LocalTransition& t) {
                 return describe_transition(solutions[i].protocol, t);
               })
       << "\n";
  if (solutions.size() > 4)
    os << "  … and " << solutions.size() - 4 << " more\n";
  return os.str();
}

}  // namespace ringstab
