// Fixed thread pool and deterministic chunked parallel_for for the
// explicit-state sweeps of the global engine.
//
// Design notes:
//  * One process-wide pool (ThreadPool::shared()), sized to the hardware,
//    created lazily on the first parallel region and reused by every caller
//    — checkers, symmetry reduction, simulator batches. Callers limit the
//    *effective* parallelism per call with a `num_threads` knob instead of
//    constructing pools of their own.
//  * parallel_for splits [0, n) into fixed chunks whose boundaries depend
//    only on (n, grain) — never on the thread count — so per-chunk partial
//    results can be merged in ascending chunk order to reproduce the serial
//    left-to-right answer bit-for-bit. Workers claim chunk indices from an
//    atomic cursor (dynamic load balancing over a deterministic partition).
//  * Grains are rounded up to a multiple of 64 so chunks never share a
//    word of a packed bitset; chunk-local bitset writes need no atomics.
//  * num_threads <= 1 (or a single chunk) runs inline on the caller with no
//    pool, no atomics, and no thread creation: the serial default is the
//    seed engine's behavior exactly.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ringstab {

/// A fixed set of std::jthread workers that block between parallel regions.
class ThreadPool {
 public:
  /// `num_threads` includes the calling thread: N-1 workers are spawned.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes available (workers + the calling thread).
  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Run job(lane) on `lanes` lanes (lane 0 is the calling thread) and
  /// block until all return. The first exception thrown by any lane is
  /// rethrown on the caller. Reentrancy-safe: a run() issued from inside a
  /// lane of an outer run() executes job(0) inline on that lane (the pool's
  /// workers are already occupied by the outer region), so nested parallel
  /// regions — a parallel synthesizer candidate invoking a parallel checker
  /// — degrade to serial instead of deadlocking.
  void run(std::size_t lanes, const std::function<void(std::size_t)>& job);

  /// The process-wide pool, sized to std::thread::hardware_concurrency()
  /// (at least 2 lanes), created on first use.
  static ThreadPool& shared();

 private:
  void worker_loop(std::stop_token stop, std::size_t lane);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_lanes_ = 0;       // lanes participating in the current job
  std::uint64_t generation_ = 0;    // bumped per run() to wake workers
  std::size_t active_ = 0;          // workers still inside the current job
  std::exception_ptr first_error_;
  std::vector<std::jthread> workers_;
};

/// One deterministic chunk of a parallel_for: states [begin, end).
struct ChunkRange {
  std::uint64_t index = 0;  // ascending chunk number, 0-based
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// Clamp a requested thread count: 0 means "all hardware lanes".
std::size_t resolve_threads(std::size_t requested);

/// Chunk size used by parallel_for when `grain` is 0: large enough to
/// amortize dispatch, small enough for load balancing, and always a
/// multiple of 64 (see header comment). Deliberately independent of
/// `num_threads` so the chunk partition — and therefore any per-chunk
/// merge — is reproducible across thread counts.
std::uint64_t default_grain(std::uint64_t n);

/// Number of chunks parallel_for will produce for (n, grain); use to size
/// per-chunk result slots before the sweep.
std::uint64_t num_chunks(std::uint64_t n, std::uint64_t grain);

/// Chunked parallel loop over [0, n). `body` is invoked once per chunk with
/// the lane that runs it (lane < num_threads). With num_threads <= 1 the
/// chunks run in ascending order on the calling thread.
void parallel_for(std::uint64_t n, std::size_t num_threads,
                  std::uint64_t grain,
                  const std::function<void(const ChunkRange&, std::size_t)>& body);

}  // namespace ringstab
