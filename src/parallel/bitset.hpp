// Packed uint64 bitset shared by the serial and parallel global engines.
//
// std::vector<bool> is bit-packed too, but gives no access to the words
// (needed to skip 64 states at a time in fixpoint sweeps), no popcount, and
// no atomic writes. PackedBitset exposes all three; writers that cannot
// guarantee word-private chunks use set_atomic() (relaxed fetch_or —
// publication happens at the parallel region join, never through the bits).
//
// Memory telemetry: while observability is enabled, every bitset keeps the
// `mem.bitset_bytes` gauge in sync with its word storage (allocation-
// grained — assign/copy/destroy, never per-bit), so the run manifest
// reports the live and peak bitset footprint of a sweep. With observability
// off the accounting path is one relaxed load; bitsets allocated while
// disabled are simply not counted.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "obs/obs.hpp"

namespace ringstab {

class PackedBitset {
 public:
  PackedBitset() = default;
  explicit PackedBitset(std::uint64_t size, bool value = false) {
    assign(size, value);
  }
  PackedBitset(const PackedBitset& other)
      : size_(other.size_), words_(other.words_) {
    account();
  }
  PackedBitset(PackedBitset&& other) noexcept
      : size_(other.size_),
        words_(std::move(other.words_)),
        reported_(other.reported_) {
    other.size_ = 0;
    other.words_.clear();
    other.reported_ = 0;
  }
  PackedBitset& operator=(const PackedBitset& other) {
    if (this != &other) {
      size_ = other.size_;
      words_ = other.words_;
      account();
    }
    return *this;
  }
  PackedBitset& operator=(PackedBitset&& other) noexcept {
    if (this != &other) {
      release();
      size_ = other.size_;
      words_ = std::move(other.words_);
      reported_ = other.reported_;
      other.size_ = 0;
      other.words_.clear();
      other.reported_ = 0;
    }
    return *this;
  }
  ~PackedBitset() { release(); }

  void assign(std::uint64_t size, bool value = false) {
    size_ = size;
    words_.assign((size + 63) / 64, value ? ~std::uint64_t{0} : 0);
    trim();
    account();
  }

  std::uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool test(std::uint64_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void set(std::uint64_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void reset(std::uint64_t i) {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void set(std::uint64_t i, bool value) {
    if (value) set(i); else reset(i);
  }

  /// Concurrent set; safe against writers of the same word. Relaxed order:
  /// the bits carry no inter-thread ordering of their own.
  void set_atomic(std::uint64_t i) {
    std::atomic_ref<std::uint64_t> w(words_[i >> 6]);
    w.fetch_or(std::uint64_t{1} << (i & 63), std::memory_order_relaxed);
  }

  /// Concurrent test-and-set: returns true iff this call flipped the bit
  /// from 0 to 1 (exactly one of racing callers wins). Used by the parallel
  /// BFS frontiers to deduplicate discovered vertices.
  bool test_and_set_atomic(std::uint64_t i) {
    std::atomic_ref<std::uint64_t> w(words_[i >> 6]);
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    return (w.fetch_or(bit, std::memory_order_relaxed) & bit) == 0;
  }

  /// Number of set bits.
  std::uint64_t count() const {
    std::uint64_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::uint64_t>(std::popcount(w));
    return n;
  }

  bool all() const { return count() == size_; }
  bool none() const {
    for (std::uint64_t w : words_)
      if (w != 0) return false;
    return true;
  }

  /// Raw word access for sweeps that skip 64 states at a time.
  std::span<const std::uint64_t> words() const { return words_; }
  std::uint64_t word(std::uint64_t w) const { return words_[w]; }
  std::uint64_t num_words() const { return words_.size(); }

  /// Compares contents only — never the telemetry bookkeeping, so two
  /// equal bitsets compare equal regardless of when observability was on.
  bool operator==(const PackedBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

 private:
  void trim() {
    // Keep bits past size() zero so count()/operator== stay exact.
    if (size_ & 63 && !words_.empty())
      words_.back() &= (std::uint64_t{1} << (size_ & 63)) - 1;
  }

  static obs::Gauge& live_bytes_gauge() {
    // The registry reference is process-lifetime; one lookup ever.
    static obs::Gauge& g = obs::gauge("mem.bitset_bytes");
    return g;
  }

  /// Reconciles the gauge with the current word storage. Enabled: report
  /// the live byte count. Disabled: withdraw whatever this bitset had
  /// reported (keeps the gauge balanced across enable/disable toggles).
  void account() {
    const bool on = obs::enabled();
    if (reported_ == 0 && !on) return;  // the off fast path: one load
    const std::uint64_t target =
        on ? words_.size() * sizeof(std::uint64_t) : 0;
    if (target == reported_) return;
    if (target > reported_)
      live_bytes_gauge().add(target - reported_);
    else
      live_bytes_gauge().sub(reported_ - target);
    reported_ = target;
  }

  void release() {
    if (reported_ == 0) return;
    live_bytes_gauge().sub(reported_);
    reported_ = 0;
  }

  std::uint64_t size_ = 0;
  std::vector<std::uint64_t> words_;
  std::uint64_t reported_ = 0;  // bytes currently counted in the gauge
};

}  // namespace ringstab
