// Packed uint64 bitset shared by the serial and parallel global engines.
//
// std::vector<bool> is bit-packed too, but gives no access to the words
// (needed to skip 64 states at a time in fixpoint sweeps), no popcount, and
// no atomic writes. PackedBitset exposes all three; writers that cannot
// guarantee word-private chunks use set_atomic() (relaxed fetch_or —
// publication happens at the parallel region join, never through the bits).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

namespace ringstab {

class PackedBitset {
 public:
  PackedBitset() = default;
  explicit PackedBitset(std::uint64_t size, bool value = false) {
    assign(size, value);
  }

  void assign(std::uint64_t size, bool value = false) {
    size_ = size;
    words_.assign((size + 63) / 64, value ? ~std::uint64_t{0} : 0);
    trim();
  }

  std::uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool test(std::uint64_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void set(std::uint64_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void reset(std::uint64_t i) {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void set(std::uint64_t i, bool value) {
    if (value) set(i); else reset(i);
  }

  /// Concurrent set; safe against writers of the same word. Relaxed order:
  /// the bits carry no inter-thread ordering of their own.
  void set_atomic(std::uint64_t i) {
    std::atomic_ref<std::uint64_t> w(words_[i >> 6]);
    w.fetch_or(std::uint64_t{1} << (i & 63), std::memory_order_relaxed);
  }

  /// Concurrent test-and-set: returns true iff this call flipped the bit
  /// from 0 to 1 (exactly one of racing callers wins). Used by the parallel
  /// BFS frontiers to deduplicate discovered vertices.
  bool test_and_set_atomic(std::uint64_t i) {
    std::atomic_ref<std::uint64_t> w(words_[i >> 6]);
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    return (w.fetch_or(bit, std::memory_order_relaxed) & bit) == 0;
  }

  /// Number of set bits.
  std::uint64_t count() const {
    std::uint64_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::uint64_t>(std::popcount(w));
    return n;
  }

  bool all() const { return count() == size_; }
  bool none() const {
    for (std::uint64_t w : words_)
      if (w != 0) return false;
    return true;
  }

  /// Raw word access for sweeps that skip 64 states at a time.
  std::span<const std::uint64_t> words() const { return words_; }
  std::uint64_t word(std::uint64_t w) const { return words_[w]; }
  std::uint64_t num_words() const { return words_.size(); }

  bool operator==(const PackedBitset& other) const = default;

 private:
  void trim() {
    // Keep bits past size() zero so count()/operator== stay exact.
    if (size_ & 63 && !words_.empty())
      words_.back() &= (std::uint64_t{1} << (size_ & 63)) - 1;
  }

  std::uint64_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ringstab
