#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "obs/obs.hpp"

namespace ringstab {
namespace {

// True while this thread is executing a lane of some ThreadPool::run. A
// nested run() from inside a lane (e.g. a parallel synthesizer candidate
// evaluation calling a parallel checker) must not wait on the pool — the
// workers it would wait for are the ones already busy running it — so
// nested regions degrade to inline execution instead of deadlocking.
thread_local bool t_inside_pool_run = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t lane = 1; lane <= workers; ++lane)
    workers_.emplace_back(
        [this, lane](std::stop_token stop) { worker_loop(stop, lane); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    for (auto& w : workers_) w.request_stop();
  }
  work_cv_.notify_all();
  // jthread joins on destruction.
}

void ThreadPool::worker_loop(std::stop_token stop, std::size_t lane) {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop.stop_requested() || generation_ != seen;
      });
      if (stop.stop_requested()) return;
      seen = generation_;
      if (lane >= job_lanes_) continue;  // this job uses fewer lanes
      job = job_;
    }
    try {
      t_inside_pool_run = true;
      (*job)(lane);
      t_inside_pool_run = false;
    } catch (...) {
      t_inside_pool_run = false;
      std::lock_guard lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    std::lock_guard lock(mu_);
    if (--active_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::run(std::size_t lanes,
                     const std::function<void(std::size_t)>& job) {
  lanes = std::clamp<std::size_t>(lanes, 1, num_threads());
  if (lanes == 1 || t_inside_pool_run) {
    job(0);
    return;
  }
  struct RunScope {  // clears the reentrancy flag on every exit path
    ~RunScope() { t_inside_pool_run = false; }
  } run_scope;
  t_inside_pool_run = true;
  {
    std::lock_guard lock(mu_);
    job_ = &job;
    job_lanes_ = lanes;
    active_ = lanes - 1;
    first_error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  std::exception_ptr caller_error;
  try {
    job(0);
  } catch (...) {
    caller_error = std::current_exception();
  }
  std::unique_lock lock(mu_);
  done_cv_.wait(lock, [&] { return active_ == 0; });
  job_ = nullptr;
  if (caller_error) std::rethrow_exception(caller_error);
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(resolve_threads(0));
  return pool;
}

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(2u, hw);
}

std::uint64_t default_grain(std::uint64_t n) {
  // Aim for plenty of chunks on any realistic machine while keeping each
  // chunk big enough that claiming it is noise. 64-alignment keeps packed
  // bitset words chunk-private.
  std::uint64_t g = std::max<std::uint64_t>(n / 256, 4096);
  return (g + 63) & ~std::uint64_t{63};
}

std::uint64_t num_chunks(std::uint64_t n, std::uint64_t grain) {
  if (n == 0) return 0;
  if (grain == 0) grain = default_grain(n);
  return (n + grain - 1) / grain;
}

void parallel_for(
    std::uint64_t n, std::size_t num_threads, std::uint64_t grain,
    const std::function<void(const ChunkRange&, std::size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = default_grain(n);
  const std::uint64_t chunks = num_chunks(n, grain);
  auto chunk_at = [&](std::uint64_t c) {
    return ChunkRange{c, c * grain, std::min(n, (c + 1) * grain)};
  };
  // When observability is on, each chunk becomes one span on the lane that
  // ran it, labelled with the caller's innermost phase name — trace sinks
  // render the sweep as one track per worker thread. The label is read on
  // the calling thread before dispatch (span stacks are thread-local).
  const bool traced = obs::enabled();
  const char* region = traced ? obs::current_span_name() : nullptr;
  if (region == nullptr) region = "parallel_for";
  // Per-chunk sweep latency distribution (p99 chunk time is the load-balance
  // health metric). Timing-shaped, so NOT thread-count-invariant.
  obs::Histogram* chunk_ns = traced ? &obs::histogram("pool.chunk_ns") : nullptr;
  if (num_threads <= 1 || chunks == 1) {
    for (std::uint64_t c = 0; c < chunks; ++c) {
      if (traced) {
        const obs::Ticks t0 = obs::now();
        {
          obs::Span span(region, /*chunk=*/true);
          body(chunk_at(c), 0);
        }
        chunk_ns->record(obs::now() - t0);
      } else {
        body(chunk_at(c), 0);
      }
    }
    return;
  }
  std::atomic<std::uint64_t> next{0};
  ThreadPool::shared().run(num_threads, [&](std::size_t lane) {
    obs::LaneScope lane_scope(static_cast<std::uint32_t>(lane));
    while (true) {
      const std::uint64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      if (traced) {
        const obs::Ticks t0 = obs::now();
        {
          obs::Span span(region, /*chunk=*/true);
          body(chunk_at(c), lane);
        }
        chunk_ns->record(obs::now() - t0);
      } else {
        body(chunk_at(c), lane);
      }
    }
  });
}

}  // namespace ringstab
