file(REMOVE_RECURSE
  "CMakeFiles/test_ltg.dir/test_ltg.cpp.o"
  "CMakeFiles/test_ltg.dir/test_ltg.cpp.o.d"
  "test_ltg"
  "test_ltg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ltg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
