# Empty dependencies file for test_ltg.
# This may be replaced when dependencies are built.
