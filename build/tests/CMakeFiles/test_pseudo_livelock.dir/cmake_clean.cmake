file(REMOVE_RECURSE
  "CMakeFiles/test_pseudo_livelock.dir/test_pseudo_livelock.cpp.o"
  "CMakeFiles/test_pseudo_livelock.dir/test_pseudo_livelock.cpp.o.d"
  "test_pseudo_livelock"
  "test_pseudo_livelock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pseudo_livelock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
