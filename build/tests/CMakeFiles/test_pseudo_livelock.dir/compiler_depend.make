# Empty compiler generated dependencies file for test_pseudo_livelock.
# This may be replaced when dependencies are built.
