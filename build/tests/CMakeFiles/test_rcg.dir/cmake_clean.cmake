file(REMOVE_RECURSE
  "CMakeFiles/test_rcg.dir/test_rcg.cpp.o"
  "CMakeFiles/test_rcg.dir/test_rcg.cpp.o.d"
  "test_rcg"
  "test_rcg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
