# Empty dependencies file for test_rcg.
# This may be replaced when dependencies are built.
