file(REMOVE_RECURSE
  "CMakeFiles/test_local_state.dir/test_local_state.cpp.o"
  "CMakeFiles/test_local_state.dir/test_local_state.cpp.o.d"
  "test_local_state"
  "test_local_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
