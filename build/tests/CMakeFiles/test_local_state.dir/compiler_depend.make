# Empty compiler generated dependencies file for test_local_state.
# This may be replaced when dependencies are built.
