file(REMOVE_RECURSE
  "CMakeFiles/test_trail_check.dir/test_trail_check.cpp.o"
  "CMakeFiles/test_trail_check.dir/test_trail_check.cpp.o.d"
  "test_trail_check"
  "test_trail_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trail_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
