# Empty compiler generated dependencies file for test_trail_check.
# This may be replaced when dependencies are built.
