file(REMOVE_RECURSE
  "CMakeFiles/test_array_synthesis.dir/test_array_synthesis.cpp.o"
  "CMakeFiles/test_array_synthesis.dir/test_array_synthesis.cpp.o.d"
  "test_array_synthesis"
  "test_array_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_array_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
