# Empty dependencies file for test_array_synthesis.
# This may be replaced when dependencies are built.
