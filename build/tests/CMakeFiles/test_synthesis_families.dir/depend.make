# Empty dependencies file for test_synthesis_families.
# This may be replaced when dependencies are built.
