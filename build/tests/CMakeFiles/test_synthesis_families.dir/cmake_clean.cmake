file(REMOVE_RECURSE
  "CMakeFiles/test_synthesis_families.dir/test_synthesis_families.cpp.o"
  "CMakeFiles/test_synthesis_families.dir/test_synthesis_families.cpp.o.d"
  "test_synthesis_families"
  "test_synthesis_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synthesis_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
