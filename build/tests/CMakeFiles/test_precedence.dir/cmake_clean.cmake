file(REMOVE_RECURSE
  "CMakeFiles/test_precedence.dir/test_precedence.cpp.o"
  "CMakeFiles/test_precedence.dir/test_precedence.cpp.o.d"
  "test_precedence"
  "test_precedence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_precedence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
