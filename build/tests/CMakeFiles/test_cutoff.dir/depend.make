# Empty dependencies file for test_cutoff.
# This may be replaced when dependencies are built.
