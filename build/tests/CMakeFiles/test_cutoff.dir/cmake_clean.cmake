file(REMOVE_RECURSE
  "CMakeFiles/test_cutoff.dir/test_cutoff.cpp.o"
  "CMakeFiles/test_cutoff.dir/test_cutoff.cpp.o.d"
  "test_cutoff"
  "test_cutoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cutoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
