# Empty compiler generated dependencies file for test_trail.
# This may be replaced when dependencies are built.
