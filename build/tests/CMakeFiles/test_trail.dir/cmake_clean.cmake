file(REMOVE_RECURSE
  "CMakeFiles/test_trail.dir/test_trail.cpp.o"
  "CMakeFiles/test_trail.dir/test_trail.cpp.o.d"
  "test_trail"
  "test_trail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
