file(REMOVE_RECURSE
  "CMakeFiles/test_global_synthesis.dir/test_global_synthesis.cpp.o"
  "CMakeFiles/test_global_synthesis.dir/test_global_synthesis.cpp.o.d"
  "test_global_synthesis"
  "test_global_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_global_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
