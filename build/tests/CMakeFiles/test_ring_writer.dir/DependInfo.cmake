
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ring_writer.cpp" "tests/CMakeFiles/test_ring_writer.dir/test_ring_writer.cpp.o" "gcc" "tests/CMakeFiles/test_ring_writer.dir/test_ring_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/ringstab_test_helpers.dir/DependInfo.cmake"
  "/root/repo/build/src/synthesis/CMakeFiles/ringstab_synthesis.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/ringstab_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/ringstab_report.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ringstab_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/global/CMakeFiles/ringstab_global.dir/DependInfo.cmake"
  "/root/repo/build/src/local/CMakeFiles/ringstab_local.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/ringstab_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ringstab_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ringstab_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
