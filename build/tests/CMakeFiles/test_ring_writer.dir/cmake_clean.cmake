file(REMOVE_RECURSE
  "CMakeFiles/test_ring_writer.dir/test_ring_writer.cpp.o"
  "CMakeFiles/test_ring_writer.dir/test_ring_writer.cpp.o.d"
  "test_ring_writer"
  "test_ring_writer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ring_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
