# Empty compiler generated dependencies file for test_ring_writer.
# This may be replaced when dependencies are built.
