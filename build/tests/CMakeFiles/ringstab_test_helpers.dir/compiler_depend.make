# Empty compiler generated dependencies file for ringstab_test_helpers.
# This may be replaced when dependencies are built.
