file(REMOVE_RECURSE
  "CMakeFiles/ringstab_test_helpers.dir/helpers.cpp.o"
  "CMakeFiles/ringstab_test_helpers.dir/helpers.cpp.o.d"
  "libringstab_test_helpers.a"
  "libringstab_test_helpers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringstab_test_helpers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
