file(REMOVE_RECURSE
  "libringstab_test_helpers.a"
)
