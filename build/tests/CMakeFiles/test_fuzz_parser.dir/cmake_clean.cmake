file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_parser.dir/test_fuzz_parser.cpp.o"
  "CMakeFiles/test_fuzz_parser.dir/test_fuzz_parser.cpp.o.d"
  "test_fuzz_parser"
  "test_fuzz_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
