# Empty dependencies file for test_fuzz_parser.
# This may be replaced when dependencies are built.
