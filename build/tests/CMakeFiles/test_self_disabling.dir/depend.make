# Empty dependencies file for test_self_disabling.
# This may be replaced when dependencies are built.
