file(REMOVE_RECURSE
  "CMakeFiles/test_self_disabling.dir/test_self_disabling.cpp.o"
  "CMakeFiles/test_self_disabling.dir/test_self_disabling.cpp.o.d"
  "test_self_disabling"
  "test_self_disabling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_self_disabling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
