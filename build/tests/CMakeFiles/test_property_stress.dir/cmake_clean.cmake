file(REMOVE_RECURSE
  "CMakeFiles/test_property_stress.dir/test_property_stress.cpp.o"
  "CMakeFiles/test_property_stress.dir/test_property_stress.cpp.o.d"
  "test_property_stress"
  "test_property_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
