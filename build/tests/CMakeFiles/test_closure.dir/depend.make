# Empty dependencies file for test_closure.
# This may be replaced when dependencies are built.
