file(REMOVE_RECURSE
  "CMakeFiles/test_closure.dir/test_closure.cpp.o"
  "CMakeFiles/test_closure.dir/test_closure.cpp.o.d"
  "test_closure"
  "test_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
