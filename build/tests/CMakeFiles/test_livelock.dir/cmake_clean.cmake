file(REMOVE_RECURSE
  "CMakeFiles/test_livelock.dir/test_livelock.cpp.o"
  "CMakeFiles/test_livelock.dir/test_livelock.cpp.o.d"
  "test_livelock"
  "test_livelock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_livelock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
