# Empty compiler generated dependencies file for test_livelock.
# This may be replaced when dependencies are built.
