# Empty dependencies file for test_ring_instance.
# This may be replaced when dependencies are built.
