file(REMOVE_RECURSE
  "CMakeFiles/test_ring_instance.dir/test_ring_instance.cpp.o"
  "CMakeFiles/test_ring_instance.dir/test_ring_instance.cpp.o.d"
  "test_ring_instance"
  "test_ring_instance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ring_instance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
