file(REMOVE_RECURSE
  "CMakeFiles/synthesis_gallery.dir/synthesis_gallery.cpp.o"
  "CMakeFiles/synthesis_gallery.dir/synthesis_gallery.cpp.o.d"
  "synthesis_gallery"
  "synthesis_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesis_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
