# Empty dependencies file for synthesis_gallery.
# This may be replaced when dependencies are built.
