file(REMOVE_RECURSE
  "CMakeFiles/ringstab_batch.dir/ringstab_batch.cpp.o"
  "CMakeFiles/ringstab_batch.dir/ringstab_batch.cpp.o.d"
  "ringstab-batch"
  "ringstab-batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringstab_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
