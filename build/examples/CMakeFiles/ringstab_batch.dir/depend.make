# Empty dependencies file for ringstab_batch.
# This may be replaced when dependencies are built.
