# Empty compiler generated dependencies file for matching_explorer.
# This may be replaced when dependencies are built.
