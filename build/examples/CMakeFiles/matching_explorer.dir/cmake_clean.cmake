file(REMOVE_RECURSE
  "CMakeFiles/matching_explorer.dir/matching_explorer.cpp.o"
  "CMakeFiles/matching_explorer.dir/matching_explorer.cpp.o.d"
  "matching_explorer"
  "matching_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
