file(REMOVE_RECURSE
  "CMakeFiles/ringstab_cli.dir/ringstab_cli.cpp.o"
  "CMakeFiles/ringstab_cli.dir/ringstab_cli.cpp.o.d"
  "ringstab"
  "ringstab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringstab_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
