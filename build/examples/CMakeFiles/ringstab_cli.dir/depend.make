# Empty dependencies file for ringstab_cli.
# This may be replaced when dependencies are built.
