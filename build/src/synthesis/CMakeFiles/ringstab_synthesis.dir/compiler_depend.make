# Empty compiler generated dependencies file for ringstab_synthesis.
# This may be replaced when dependencies are built.
