file(REMOVE_RECURSE
  "libringstab_synthesis.a"
)
