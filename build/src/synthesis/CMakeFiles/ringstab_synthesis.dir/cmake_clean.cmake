file(REMOVE_RECURSE
  "CMakeFiles/ringstab_synthesis.dir/array_synthesizer.cpp.o"
  "CMakeFiles/ringstab_synthesis.dir/array_synthesizer.cpp.o.d"
  "CMakeFiles/ringstab_synthesis.dir/candidates.cpp.o"
  "CMakeFiles/ringstab_synthesis.dir/candidates.cpp.o.d"
  "CMakeFiles/ringstab_synthesis.dir/global_synthesizer.cpp.o"
  "CMakeFiles/ringstab_synthesis.dir/global_synthesizer.cpp.o.d"
  "CMakeFiles/ringstab_synthesis.dir/local_synthesizer.cpp.o"
  "CMakeFiles/ringstab_synthesis.dir/local_synthesizer.cpp.o.d"
  "libringstab_synthesis.a"
  "libringstab_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringstab_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
