file(REMOVE_RECURSE
  "libringstab_global.a"
)
