file(REMOVE_RECURSE
  "CMakeFiles/ringstab_global.dir/array_instance.cpp.o"
  "CMakeFiles/ringstab_global.dir/array_instance.cpp.o.d"
  "CMakeFiles/ringstab_global.dir/checker.cpp.o"
  "CMakeFiles/ringstab_global.dir/checker.cpp.o.d"
  "CMakeFiles/ringstab_global.dir/cutoff.cpp.o"
  "CMakeFiles/ringstab_global.dir/cutoff.cpp.o.d"
  "CMakeFiles/ringstab_global.dir/ring_instance.cpp.o"
  "CMakeFiles/ringstab_global.dir/ring_instance.cpp.o.d"
  "CMakeFiles/ringstab_global.dir/symmetry.cpp.o"
  "CMakeFiles/ringstab_global.dir/symmetry.cpp.o.d"
  "CMakeFiles/ringstab_global.dir/trail_check.cpp.o"
  "CMakeFiles/ringstab_global.dir/trail_check.cpp.o.d"
  "CMakeFiles/ringstab_global.dir/tree_instance.cpp.o"
  "CMakeFiles/ringstab_global.dir/tree_instance.cpp.o.d"
  "libringstab_global.a"
  "libringstab_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringstab_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
