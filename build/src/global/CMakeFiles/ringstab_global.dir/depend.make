# Empty dependencies file for ringstab_global.
# This may be replaced when dependencies are built.
