
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/global/array_instance.cpp" "src/global/CMakeFiles/ringstab_global.dir/array_instance.cpp.o" "gcc" "src/global/CMakeFiles/ringstab_global.dir/array_instance.cpp.o.d"
  "/root/repo/src/global/checker.cpp" "src/global/CMakeFiles/ringstab_global.dir/checker.cpp.o" "gcc" "src/global/CMakeFiles/ringstab_global.dir/checker.cpp.o.d"
  "/root/repo/src/global/cutoff.cpp" "src/global/CMakeFiles/ringstab_global.dir/cutoff.cpp.o" "gcc" "src/global/CMakeFiles/ringstab_global.dir/cutoff.cpp.o.d"
  "/root/repo/src/global/ring_instance.cpp" "src/global/CMakeFiles/ringstab_global.dir/ring_instance.cpp.o" "gcc" "src/global/CMakeFiles/ringstab_global.dir/ring_instance.cpp.o.d"
  "/root/repo/src/global/symmetry.cpp" "src/global/CMakeFiles/ringstab_global.dir/symmetry.cpp.o" "gcc" "src/global/CMakeFiles/ringstab_global.dir/symmetry.cpp.o.d"
  "/root/repo/src/global/trail_check.cpp" "src/global/CMakeFiles/ringstab_global.dir/trail_check.cpp.o" "gcc" "src/global/CMakeFiles/ringstab_global.dir/trail_check.cpp.o.d"
  "/root/repo/src/global/tree_instance.cpp" "src/global/CMakeFiles/ringstab_global.dir/tree_instance.cpp.o" "gcc" "src/global/CMakeFiles/ringstab_global.dir/tree_instance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ringstab_core.dir/DependInfo.cmake"
  "/root/repo/build/src/local/CMakeFiles/ringstab_local.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ringstab_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
