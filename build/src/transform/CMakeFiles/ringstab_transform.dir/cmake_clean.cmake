file(REMOVE_RECURSE
  "CMakeFiles/ringstab_transform.dir/transform.cpp.o"
  "CMakeFiles/ringstab_transform.dir/transform.cpp.o.d"
  "libringstab_transform.a"
  "libringstab_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringstab_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
