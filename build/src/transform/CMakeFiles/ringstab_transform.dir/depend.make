# Empty dependencies file for ringstab_transform.
# This may be replaced when dependencies are built.
