file(REMOVE_RECURSE
  "libringstab_transform.a"
)
