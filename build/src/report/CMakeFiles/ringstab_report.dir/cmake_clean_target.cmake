file(REMOVE_RECURSE
  "libringstab_report.a"
)
