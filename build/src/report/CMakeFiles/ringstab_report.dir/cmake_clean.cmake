file(REMOVE_RECURSE
  "CMakeFiles/ringstab_report.dir/report.cpp.o"
  "CMakeFiles/ringstab_report.dir/report.cpp.o.d"
  "libringstab_report.a"
  "libringstab_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringstab_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
