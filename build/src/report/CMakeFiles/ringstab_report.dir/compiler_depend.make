# Empty compiler generated dependencies file for ringstab_report.
# This may be replaced when dependencies are built.
