file(REMOVE_RECURSE
  "libringstab_protocols.a"
)
