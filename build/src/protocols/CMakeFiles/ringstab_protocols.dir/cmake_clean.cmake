file(REMOVE_RECURSE
  "CMakeFiles/ringstab_protocols.dir/agreement.cpp.o"
  "CMakeFiles/ringstab_protocols.dir/agreement.cpp.o.d"
  "CMakeFiles/ringstab_protocols.dir/arrays.cpp.o"
  "CMakeFiles/ringstab_protocols.dir/arrays.cpp.o.d"
  "CMakeFiles/ringstab_protocols.dir/coloring.cpp.o"
  "CMakeFiles/ringstab_protocols.dir/coloring.cpp.o.d"
  "CMakeFiles/ringstab_protocols.dir/matching.cpp.o"
  "CMakeFiles/ringstab_protocols.dir/matching.cpp.o.d"
  "CMakeFiles/ringstab_protocols.dir/misc.cpp.o"
  "CMakeFiles/ringstab_protocols.dir/misc.cpp.o.d"
  "CMakeFiles/ringstab_protocols.dir/sum_not_two.cpp.o"
  "CMakeFiles/ringstab_protocols.dir/sum_not_two.cpp.o.d"
  "libringstab_protocols.a"
  "libringstab_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringstab_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
