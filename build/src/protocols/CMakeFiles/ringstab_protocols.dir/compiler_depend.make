# Empty compiler generated dependencies file for ringstab_protocols.
# This may be replaced when dependencies are built.
