
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/agreement.cpp" "src/protocols/CMakeFiles/ringstab_protocols.dir/agreement.cpp.o" "gcc" "src/protocols/CMakeFiles/ringstab_protocols.dir/agreement.cpp.o.d"
  "/root/repo/src/protocols/arrays.cpp" "src/protocols/CMakeFiles/ringstab_protocols.dir/arrays.cpp.o" "gcc" "src/protocols/CMakeFiles/ringstab_protocols.dir/arrays.cpp.o.d"
  "/root/repo/src/protocols/coloring.cpp" "src/protocols/CMakeFiles/ringstab_protocols.dir/coloring.cpp.o" "gcc" "src/protocols/CMakeFiles/ringstab_protocols.dir/coloring.cpp.o.d"
  "/root/repo/src/protocols/matching.cpp" "src/protocols/CMakeFiles/ringstab_protocols.dir/matching.cpp.o" "gcc" "src/protocols/CMakeFiles/ringstab_protocols.dir/matching.cpp.o.d"
  "/root/repo/src/protocols/misc.cpp" "src/protocols/CMakeFiles/ringstab_protocols.dir/misc.cpp.o" "gcc" "src/protocols/CMakeFiles/ringstab_protocols.dir/misc.cpp.o.d"
  "/root/repo/src/protocols/sum_not_two.cpp" "src/protocols/CMakeFiles/ringstab_protocols.dir/sum_not_two.cpp.o" "gcc" "src/protocols/CMakeFiles/ringstab_protocols.dir/sum_not_two.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ringstab_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
