file(REMOVE_RECURSE
  "libringstab_graph.a"
)
