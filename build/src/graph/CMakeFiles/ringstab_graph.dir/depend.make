# Empty dependencies file for ringstab_graph.
# This may be replaced when dependencies are built.
