file(REMOVE_RECURSE
  "CMakeFiles/ringstab_graph.dir/cycles.cpp.o"
  "CMakeFiles/ringstab_graph.dir/cycles.cpp.o.d"
  "CMakeFiles/ringstab_graph.dir/digraph.cpp.o"
  "CMakeFiles/ringstab_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/ringstab_graph.dir/dot.cpp.o"
  "CMakeFiles/ringstab_graph.dir/dot.cpp.o.d"
  "CMakeFiles/ringstab_graph.dir/feedback.cpp.o"
  "CMakeFiles/ringstab_graph.dir/feedback.cpp.o.d"
  "CMakeFiles/ringstab_graph.dir/scc.cpp.o"
  "CMakeFiles/ringstab_graph.dir/scc.cpp.o.d"
  "CMakeFiles/ringstab_graph.dir/walks.cpp.o"
  "CMakeFiles/ringstab_graph.dir/walks.cpp.o.d"
  "libringstab_graph.a"
  "libringstab_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringstab_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
