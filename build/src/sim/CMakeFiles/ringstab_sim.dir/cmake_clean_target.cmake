file(REMOVE_RECURSE
  "libringstab_sim.a"
)
