file(REMOVE_RECURSE
  "CMakeFiles/ringstab_sim.dir/simulator.cpp.o"
  "CMakeFiles/ringstab_sim.dir/simulator.cpp.o.d"
  "libringstab_sim.a"
  "libringstab_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringstab_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
