# Empty compiler generated dependencies file for ringstab_sim.
# This may be replaced when dependencies are built.
