
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ast.cpp" "src/core/CMakeFiles/ringstab_core.dir/ast.cpp.o" "gcc" "src/core/CMakeFiles/ringstab_core.dir/ast.cpp.o.d"
  "/root/repo/src/core/builder.cpp" "src/core/CMakeFiles/ringstab_core.dir/builder.cpp.o" "gcc" "src/core/CMakeFiles/ringstab_core.dir/builder.cpp.o.d"
  "/root/repo/src/core/domain.cpp" "src/core/CMakeFiles/ringstab_core.dir/domain.cpp.o" "gcc" "src/core/CMakeFiles/ringstab_core.dir/domain.cpp.o.d"
  "/root/repo/src/core/lexer.cpp" "src/core/CMakeFiles/ringstab_core.dir/lexer.cpp.o" "gcc" "src/core/CMakeFiles/ringstab_core.dir/lexer.cpp.o.d"
  "/root/repo/src/core/local_state.cpp" "src/core/CMakeFiles/ringstab_core.dir/local_state.cpp.o" "gcc" "src/core/CMakeFiles/ringstab_core.dir/local_state.cpp.o.d"
  "/root/repo/src/core/parser.cpp" "src/core/CMakeFiles/ringstab_core.dir/parser.cpp.o" "gcc" "src/core/CMakeFiles/ringstab_core.dir/parser.cpp.o.d"
  "/root/repo/src/core/printer.cpp" "src/core/CMakeFiles/ringstab_core.dir/printer.cpp.o" "gcc" "src/core/CMakeFiles/ringstab_core.dir/printer.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/core/CMakeFiles/ringstab_core.dir/protocol.cpp.o" "gcc" "src/core/CMakeFiles/ringstab_core.dir/protocol.cpp.o.d"
  "/root/repo/src/core/ring_writer.cpp" "src/core/CMakeFiles/ringstab_core.dir/ring_writer.cpp.o" "gcc" "src/core/CMakeFiles/ringstab_core.dir/ring_writer.cpp.o.d"
  "/root/repo/src/core/types.cpp" "src/core/CMakeFiles/ringstab_core.dir/types.cpp.o" "gcc" "src/core/CMakeFiles/ringstab_core.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
