# Empty compiler generated dependencies file for ringstab_core.
# This may be replaced when dependencies are built.
