file(REMOVE_RECURSE
  "CMakeFiles/ringstab_core.dir/ast.cpp.o"
  "CMakeFiles/ringstab_core.dir/ast.cpp.o.d"
  "CMakeFiles/ringstab_core.dir/builder.cpp.o"
  "CMakeFiles/ringstab_core.dir/builder.cpp.o.d"
  "CMakeFiles/ringstab_core.dir/domain.cpp.o"
  "CMakeFiles/ringstab_core.dir/domain.cpp.o.d"
  "CMakeFiles/ringstab_core.dir/lexer.cpp.o"
  "CMakeFiles/ringstab_core.dir/lexer.cpp.o.d"
  "CMakeFiles/ringstab_core.dir/local_state.cpp.o"
  "CMakeFiles/ringstab_core.dir/local_state.cpp.o.d"
  "CMakeFiles/ringstab_core.dir/parser.cpp.o"
  "CMakeFiles/ringstab_core.dir/parser.cpp.o.d"
  "CMakeFiles/ringstab_core.dir/printer.cpp.o"
  "CMakeFiles/ringstab_core.dir/printer.cpp.o.d"
  "CMakeFiles/ringstab_core.dir/protocol.cpp.o"
  "CMakeFiles/ringstab_core.dir/protocol.cpp.o.d"
  "CMakeFiles/ringstab_core.dir/ring_writer.cpp.o"
  "CMakeFiles/ringstab_core.dir/ring_writer.cpp.o.d"
  "CMakeFiles/ringstab_core.dir/types.cpp.o"
  "CMakeFiles/ringstab_core.dir/types.cpp.o.d"
  "libringstab_core.a"
  "libringstab_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringstab_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
