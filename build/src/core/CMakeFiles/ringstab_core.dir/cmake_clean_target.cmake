file(REMOVE_RECURSE
  "libringstab_core.a"
)
