# Empty dependencies file for ringstab_local.
# This may be replaced when dependencies are built.
