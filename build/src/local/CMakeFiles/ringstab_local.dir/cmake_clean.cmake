file(REMOVE_RECURSE
  "CMakeFiles/ringstab_local.dir/array.cpp.o"
  "CMakeFiles/ringstab_local.dir/array.cpp.o.d"
  "CMakeFiles/ringstab_local.dir/closure.cpp.o"
  "CMakeFiles/ringstab_local.dir/closure.cpp.o.d"
  "CMakeFiles/ringstab_local.dir/convergence.cpp.o"
  "CMakeFiles/ringstab_local.dir/convergence.cpp.o.d"
  "CMakeFiles/ringstab_local.dir/deadlock.cpp.o"
  "CMakeFiles/ringstab_local.dir/deadlock.cpp.o.d"
  "CMakeFiles/ringstab_local.dir/livelock.cpp.o"
  "CMakeFiles/ringstab_local.dir/livelock.cpp.o.d"
  "CMakeFiles/ringstab_local.dir/ltg.cpp.o"
  "CMakeFiles/ringstab_local.dir/ltg.cpp.o.d"
  "CMakeFiles/ringstab_local.dir/precedence.cpp.o"
  "CMakeFiles/ringstab_local.dir/precedence.cpp.o.d"
  "CMakeFiles/ringstab_local.dir/pseudo_livelock.cpp.o"
  "CMakeFiles/ringstab_local.dir/pseudo_livelock.cpp.o.d"
  "CMakeFiles/ringstab_local.dir/rcg.cpp.o"
  "CMakeFiles/ringstab_local.dir/rcg.cpp.o.d"
  "CMakeFiles/ringstab_local.dir/self_disabling.cpp.o"
  "CMakeFiles/ringstab_local.dir/self_disabling.cpp.o.d"
  "CMakeFiles/ringstab_local.dir/trail.cpp.o"
  "CMakeFiles/ringstab_local.dir/trail.cpp.o.d"
  "libringstab_local.a"
  "libringstab_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringstab_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
