
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/local/array.cpp" "src/local/CMakeFiles/ringstab_local.dir/array.cpp.o" "gcc" "src/local/CMakeFiles/ringstab_local.dir/array.cpp.o.d"
  "/root/repo/src/local/closure.cpp" "src/local/CMakeFiles/ringstab_local.dir/closure.cpp.o" "gcc" "src/local/CMakeFiles/ringstab_local.dir/closure.cpp.o.d"
  "/root/repo/src/local/convergence.cpp" "src/local/CMakeFiles/ringstab_local.dir/convergence.cpp.o" "gcc" "src/local/CMakeFiles/ringstab_local.dir/convergence.cpp.o.d"
  "/root/repo/src/local/deadlock.cpp" "src/local/CMakeFiles/ringstab_local.dir/deadlock.cpp.o" "gcc" "src/local/CMakeFiles/ringstab_local.dir/deadlock.cpp.o.d"
  "/root/repo/src/local/livelock.cpp" "src/local/CMakeFiles/ringstab_local.dir/livelock.cpp.o" "gcc" "src/local/CMakeFiles/ringstab_local.dir/livelock.cpp.o.d"
  "/root/repo/src/local/ltg.cpp" "src/local/CMakeFiles/ringstab_local.dir/ltg.cpp.o" "gcc" "src/local/CMakeFiles/ringstab_local.dir/ltg.cpp.o.d"
  "/root/repo/src/local/precedence.cpp" "src/local/CMakeFiles/ringstab_local.dir/precedence.cpp.o" "gcc" "src/local/CMakeFiles/ringstab_local.dir/precedence.cpp.o.d"
  "/root/repo/src/local/pseudo_livelock.cpp" "src/local/CMakeFiles/ringstab_local.dir/pseudo_livelock.cpp.o" "gcc" "src/local/CMakeFiles/ringstab_local.dir/pseudo_livelock.cpp.o.d"
  "/root/repo/src/local/rcg.cpp" "src/local/CMakeFiles/ringstab_local.dir/rcg.cpp.o" "gcc" "src/local/CMakeFiles/ringstab_local.dir/rcg.cpp.o.d"
  "/root/repo/src/local/self_disabling.cpp" "src/local/CMakeFiles/ringstab_local.dir/self_disabling.cpp.o" "gcc" "src/local/CMakeFiles/ringstab_local.dir/self_disabling.cpp.o.d"
  "/root/repo/src/local/trail.cpp" "src/local/CMakeFiles/ringstab_local.dir/trail.cpp.o" "gcc" "src/local/CMakeFiles/ringstab_local.dir/trail.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ringstab_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ringstab_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
