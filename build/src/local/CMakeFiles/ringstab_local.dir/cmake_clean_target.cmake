file(REMOVE_RECURSE
  "libringstab_local.a"
)
