# Empty dependencies file for bench_fig8_gouda_acharya.
# This may be replaced when dependencies are built.
