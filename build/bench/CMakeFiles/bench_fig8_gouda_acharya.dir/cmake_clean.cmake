file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_gouda_acharya.dir/bench_fig8_gouda_acharya.cpp.o"
  "CMakeFiles/bench_fig8_gouda_acharya.dir/bench_fig8_gouda_acharya.cpp.o.d"
  "bench_fig8_gouda_acharya"
  "bench_fig8_gouda_acharya.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_gouda_acharya.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
