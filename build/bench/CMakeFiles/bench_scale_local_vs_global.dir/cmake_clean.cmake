file(REMOVE_RECURSE
  "CMakeFiles/bench_scale_local_vs_global.dir/bench_scale_local_vs_global.cpp.o"
  "CMakeFiles/bench_scale_local_vs_global.dir/bench_scale_local_vs_global.cpp.o.d"
  "bench_scale_local_vs_global"
  "bench_scale_local_vs_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scale_local_vs_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
