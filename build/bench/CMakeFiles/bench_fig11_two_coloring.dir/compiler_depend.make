# Empty compiler generated dependencies file for bench_fig11_two_coloring.
# This may be replaced when dependencies are built.
