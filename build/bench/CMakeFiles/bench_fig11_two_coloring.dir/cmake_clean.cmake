file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_two_coloring.dir/bench_fig11_two_coloring.cpp.o"
  "CMakeFiles/bench_fig11_two_coloring.dir/bench_fig11_two_coloring.cpp.o.d"
  "bench_fig11_two_coloring"
  "bench_fig11_two_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_two_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
