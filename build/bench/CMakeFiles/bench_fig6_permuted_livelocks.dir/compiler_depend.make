# Empty compiler generated dependencies file for bench_fig6_permuted_livelocks.
# This may be replaced when dependencies are built.
