file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_permuted_livelocks.dir/bench_fig6_permuted_livelocks.cpp.o"
  "CMakeFiles/bench_fig6_permuted_livelocks.dir/bench_fig6_permuted_livelocks.cpp.o.d"
  "bench_fig6_permuted_livelocks"
  "bench_fig6_permuted_livelocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_permuted_livelocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
