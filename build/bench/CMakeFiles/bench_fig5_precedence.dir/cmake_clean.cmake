file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_precedence.dir/bench_fig5_precedence.cpp.o"
  "CMakeFiles/bench_fig5_precedence.dir/bench_fig5_precedence.cpp.o.d"
  "bench_fig5_precedence"
  "bench_fig5_precedence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_precedence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
