# Empty dependencies file for bench_fig5_precedence.
# This may be replaced when dependencies are built.
