file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_matching_ltg.dir/bench_fig4_matching_ltg.cpp.o"
  "CMakeFiles/bench_fig4_matching_ltg.dir/bench_fig4_matching_ltg.cpp.o.d"
  "bench_fig4_matching_ltg"
  "bench_fig4_matching_ltg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_matching_ltg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
