# Empty dependencies file for bench_fig4_matching_ltg.
# This may be replaced when dependencies are built.
