file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_contiguous.dir/bench_fig7_contiguous.cpp.o"
  "CMakeFiles/bench_fig7_contiguous.dir/bench_fig7_contiguous.cpp.o.d"
  "bench_fig7_contiguous"
  "bench_fig7_contiguous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_contiguous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
