file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_convergence.dir/bench_sim_convergence.cpp.o"
  "CMakeFiles/bench_sim_convergence.dir/bench_sim_convergence.cpp.o.d"
  "bench_sim_convergence"
  "bench_sim_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
