file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_composition.dir/bench_ext_composition.cpp.o"
  "CMakeFiles/bench_ext_composition.dir/bench_ext_composition.cpp.o.d"
  "bench_ext_composition"
  "bench_ext_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
