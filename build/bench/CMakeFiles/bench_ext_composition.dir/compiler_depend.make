# Empty compiler generated dependencies file for bench_ext_composition.
# This may be replaced when dependencies are built.
