file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_arrays.dir/bench_ext_arrays.cpp.o"
  "CMakeFiles/bench_ext_arrays.dir/bench_ext_arrays.cpp.o.d"
  "bench_ext_arrays"
  "bench_ext_arrays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_arrays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
