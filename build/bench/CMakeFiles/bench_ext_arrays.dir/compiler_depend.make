# Empty compiler generated dependencies file for bench_ext_arrays.
# This may be replaced when dependencies are built.
