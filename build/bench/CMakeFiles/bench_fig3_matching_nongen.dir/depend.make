# Empty dependencies file for bench_fig3_matching_nongen.
# This may be replaced when dependencies are built.
