file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_matching_nongen.dir/bench_fig3_matching_nongen.cpp.o"
  "CMakeFiles/bench_fig3_matching_nongen.dir/bench_fig3_matching_nongen.cpp.o.d"
  "bench_fig3_matching_nongen"
  "bench_fig3_matching_nongen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_matching_nongen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
