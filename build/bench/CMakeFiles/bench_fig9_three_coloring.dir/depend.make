# Empty dependencies file for bench_fig9_three_coloring.
# This may be replaced when dependencies are built.
