file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_matching_rcg.dir/bench_fig1_matching_rcg.cpp.o"
  "CMakeFiles/bench_fig1_matching_rcg.dir/bench_fig1_matching_rcg.cpp.o.d"
  "bench_fig1_matching_rcg"
  "bench_fig1_matching_rcg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_matching_rcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
