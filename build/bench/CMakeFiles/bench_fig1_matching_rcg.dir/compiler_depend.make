# Empty compiler generated dependencies file for bench_fig1_matching_rcg.
# This may be replaced when dependencies are built.
