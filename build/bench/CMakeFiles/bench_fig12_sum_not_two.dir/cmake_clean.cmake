file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_sum_not_two.dir/bench_fig12_sum_not_two.cpp.o"
  "CMakeFiles/bench_fig12_sum_not_two.dir/bench_fig12_sum_not_two.cpp.o.d"
  "bench_fig12_sum_not_two"
  "bench_fig12_sum_not_two.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_sum_not_two.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
