# Empty dependencies file for bench_fig12_sum_not_two.
# This may be replaced when dependencies are built.
