file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_matching_deadlock_free.dir/bench_fig2_matching_deadlock_free.cpp.o"
  "CMakeFiles/bench_fig2_matching_deadlock_free.dir/bench_fig2_matching_deadlock_free.cpp.o.d"
  "bench_fig2_matching_deadlock_free"
  "bench_fig2_matching_deadlock_free.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_matching_deadlock_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
