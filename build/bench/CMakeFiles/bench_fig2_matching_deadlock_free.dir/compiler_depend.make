# Empty compiler generated dependencies file for bench_fig2_matching_deadlock_free.
# This may be replaced when dependencies are built.
